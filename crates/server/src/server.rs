//! The Amnesia server state machine.

use crate::auth::{Session, SessionManager, Verifier};
use crate::error::ServerError;
use crate::pending::{PendingRequest, PendingRequests, RequestPurpose};
use crate::protocol::{
    FromServer, KpBackup, PhonePush, Reply, SessionGrantToken, ToServer, TokenResponse,
};
use crate::storage::{AccountKind, AccountRef, RecoveredCredential, StoredAccount, UserRecord};
use amnesia_core::{
    derive_intermediate, derive_password, AccountEntry, Domain, EntryTable, GeneratedPassword,
    OnlineId, PasswordPolicy, PasswordRequest, PhoneId, Seed, Token, Username,
};
use amnesia_crypto::{aead, KdfPolicy, SecretRng};
use amnesia_net::SimInstant;
use amnesia_rendezvous::{PushEnvelope, RegistrationId};
use amnesia_store::{Database, TypedTable};
use amnesia_telemetry::{Registry, WallClock};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;

/// A logged-in session handle (alias of the auth-layer token).
pub type SessionToken = Session;

/// Server deployment parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Network endpoint name of this server.
    pub endpoint: String,
    /// Seed for all server-side randomness (`Oid`, `σ`, salts, sessions).
    pub seed: u64,
    /// KDF hardness policy for stored verifiers. [`KdfPolicy::PAPER`]
    /// (one PBKDF2 iteration) reproduces the paper's plain salted hash;
    /// the memory-hard ladder rungs (`KdfPolicy::INTERACTIVE`/`BALANCED`/
    /// `PARANOID`) price offline guessing in attacker silicon area × time.
    pub kdf_policy: KdfPolicy,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            endpoint: "amnesia-server".into(),
            seed: 0,
            kdf_policy: KdfPolicy::PAPER,
        }
    }
}

/// Counters the evaluation harness reads.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests pushed to phones.
    pub requests_pushed: u64,
    /// Passwords generated from returned tokens.
    pub passwords_generated: u64,
    /// Tokens that matched no pending request.
    pub tokens_rejected: u64,
    /// Failed logins observed.
    pub failed_logins: u64,
}

/// What the server wants transmitted after handling one message.
#[derive(Debug, Default)]
pub struct ServerReaction {
    /// Replies to deliver to browser endpoints, each tagged with the
    /// request id of the session it answers.
    pub replies: Vec<(String, Reply)>,
    /// A push to forward to the rendezvous service, if any.
    pub push: Option<PushEnvelope>,
}

/// What a returned token produced (see
/// [`AmnesiaServer::receive_token`]).
#[derive(Debug)]
pub enum TokenOutcome {
    /// A password is ready for delivery to the requesting browser.
    PasswordReady {
        /// The pending request the token satisfied.
        pending: PendingRequest,
        /// The generated (or vault-recovered) password.
        password: GeneratedPassword,
    },
    /// A chosen password was sealed and stored (vault extension).
    VaultStored {
        /// The pending store request the token satisfied.
        pending: PendingRequest,
    },
}

/// The Amnesia web server (see the crate-level docs for the protocol map).
pub struct AmnesiaServer {
    config: ServerConfig,
    rng: SecretRng,
    db: Database,
    users: TypedTable<String, UserRecord>,
    sessions: SessionManager,
    pending: PendingRequests,
    captchas: HashMap<String, String>,
    session_grants: HashMap<String, (SessionGrantToken, u32)>,
    stats: ServerStats,
    telemetry: Registry,
}

impl fmt::Debug for AmnesiaServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AmnesiaServer")
            .field("endpoint", &self.config.endpoint)
            .field("users", &self.users.len())
            .field("pending", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl AmnesiaServer {
    /// Creates a server with a fresh in-memory database.
    pub fn new(config: ServerConfig) -> Self {
        Self::with_database(config, Database::in_memory())
    }

    /// Creates a server over an existing database (e.g. one reloaded from a
    /// snapshot).
    pub fn with_database(config: ServerConfig, db: Database) -> Self {
        let users = db.table("users");
        AmnesiaServer {
            rng: SecretRng::seeded(config.seed),
            config,
            db,
            users,
            sessions: SessionManager::new(),
            pending: PendingRequests::new(),
            captchas: HashMap::new(),
            session_grants: HashMap::new(),
            stats: ServerStats::default(),
            telemetry: Registry::new(),
        }
    }

    /// The server's network endpoint name.
    pub fn endpoint(&self) -> &str {
        &self.config.endpoint
    }

    /// Replaces the metrics registry this server records into (`server.*`
    /// counters, the pending-request gauge, and per-step compute spans).
    pub fn set_telemetry(&mut self, registry: Registry) {
        self.telemetry = registry;
    }

    /// Number of password requests currently awaiting their phone tokens
    /// (the queue depth sharded deployments report per shard).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    fn note_pending_depth(&self) {
        self.telemetry
            .gauge("server.pending_requests")
            .set_usize(self.pending.len());
    }

    /// Evaluation counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Persists the user database to a checksummed snapshot file.
    ///
    /// # Errors
    ///
    /// Propagates storage/IO errors.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), ServerError> {
        self.db.save_to(path).map_err(ServerError::from)
    }

    /// Reopens a server from a database snapshot.
    ///
    /// # Errors
    ///
    /// Propagates storage/IO errors.
    pub fn open(config: ServerConfig, path: impl AsRef<Path>) -> Result<Self, ServerError> {
        let db = Database::open(path)?;
        Ok(Self::with_database(config, db))
    }

    /// Opens (or creates) a server over a durable database rooted at `dir`:
    /// every user mutation is write-ahead-logged and group-committed before
    /// the handler returns, and crash recovery replays the log over the
    /// last compacted snapshot (see `amnesia_store::wal`).
    ///
    /// # Errors
    ///
    /// Propagates storage/IO and recovery errors.
    pub fn open_durable(config: ServerConfig, dir: impl AsRef<Path>) -> Result<Self, ServerError> {
        let db = Database::open_durable(dir)?;
        Ok(Self::with_database(config, db))
    }

    /// The server's backing database (durable deployments use this to drive
    /// compaction policy).
    pub fn database(&self) -> &Database {
        &self.db
    }

    // -- user lifecycle ----------------------------------------------------

    /// Signs up a new Amnesia user with a master password.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UserExists`] for a taken ID.
    pub fn register_user(
        &mut self,
        user_id: &str,
        master_password: &str,
    ) -> Result<(), ServerError> {
        if self.users.contains(&user_id.to_string())? {
            return Err(ServerError::UserExists {
                user_id: user_id.into(),
            });
        }
        let mp_verifier = self.derive_verifier(master_password.as_bytes())?;
        let record = UserRecord {
            user_id: user_id.into(),
            oid: OnlineId::random(&mut self.rng),
            mp_verifier,
            pid_verifier: None,
            registration_id: None,
            accounts: Vec::new(),
        };
        self.users.insert(&user_id.to_string(), &record)?;
        Ok(())
    }

    /// Derives a verifier under the deployment's [`KdfPolicy`], timing the
    /// derivation into the per-class latency histogram
    /// (`crypto.kdf.{cpu,memhard}.derive_us`).
    fn derive_verifier(&mut self, secret: &[u8]) -> Result<Verifier, ServerError> {
        let _kdf = self.telemetry.span(
            Self::kdf_span_name(&self.config.kdf_policy),
            WallClock::new(),
        );
        Ok(Verifier::derive(
            secret,
            &self.config.kdf_policy,
            &mut self.rng,
        )?)
    }

    /// Histogram name for one KDF execution under `policy`.
    fn kdf_span_name(policy: &KdfPolicy) -> &'static str {
        match policy.class_name() {
            "memhard" => "crypto.kdf.memhard.derive_us",
            _ => "crypto.kdf.cpu.derive_us",
        }
    }

    fn load_user(&self, user_id: &str) -> Result<UserRecord, ServerError> {
        self.users
            .get(&user_id.to_string())?
            .ok_or_else(|| ServerError::UnknownUser {
                user_id: user_id.into(),
            })
    }

    fn store_user(&self, record: &UserRecord) -> Result<(), ServerError> {
        self.users.put(&record.user_id.clone(), record)?;
        Ok(())
    }

    fn verify_master_password(
        &mut self,
        user_id: &str,
        master_password: &str,
    ) -> Result<UserRecord, ServerError> {
        if self.sessions.is_locked(user_id) {
            return Err(ServerError::AccountLocked {
                failures: crate::auth::LOCKOUT_THRESHOLD,
            });
        }
        let record = self.load_user(user_id)?;
        // Verification re-derives under the *stored* policy (the hash is a
        // function of it); `verify_expecting` additionally refuses to serve
        // a memory-hard record under a CPU-only deployment config, so a
        // hardness downgrade is a loud error, never a silent weakening.
        let ok = {
            let _kdf = self.telemetry.span(
                Self::kdf_span_name(record.mp_verifier.policy()),
                WallClock::new(),
            );
            record
                .mp_verifier
                .verify_expecting(master_password.as_bytes(), &self.config.kdf_policy)?
        };
        if ok {
            self.sessions.clear_failures(user_id);
            Ok(record)
        } else {
            self.stats.failed_logins += 1;
            self.telemetry.counter("server.failed_logins").inc();
            Err(self.sessions.record_failure(user_id))
        }
    }

    /// Authenticates with the master password and issues a session.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::BadCredentials`], escalating to
    /// [`ServerError::AccountLocked`] after repeated failures.
    pub fn login(
        &mut self,
        user_id: &str,
        master_password: &str,
    ) -> Result<SessionToken, ServerError> {
        self.verify_master_password(user_id, master_password)?;
        Ok(self.sessions.issue(user_id, &mut self.rng))
    }

    /// Ends a session; returns whether it existed.
    pub fn logout(&mut self, session: &SessionToken) -> bool {
        self.sessions.revoke(session)
    }

    fn session_user(&self, session: &SessionToken) -> Result<UserRecord, ServerError> {
        let user_id = self.sessions.resolve(session)?.to_string();
        self.load_user(&user_id)
    }

    // -- phone pairing -----------------------------------------------------

    /// Starts phone pairing: returns the CAPTCHA code displayed on the web
    /// page, which the user must type into the Amnesia application.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::PhoneAlreadyPaired`] if a phone is paired, or
    /// session errors.
    pub fn begin_phone_pairing(&mut self, session: &SessionToken) -> Result<String, ServerError> {
        let record = self.session_user(session)?;
        if record.phone_paired() {
            return Err(ServerError::PhoneAlreadyPaired);
        }
        let code = format!("{:06}", self.rng.next_u64() % 1_000_000);
        self.captchas.insert(record.user_id.clone(), code.clone());
        Ok(code)
    }

    /// Completes pairing with the phone-supplied CAPTCHA, `Pid` and
    /// registration ID. Stores the registration ID in plaintext and the
    /// `Pid` hashed and salted (Table I).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::BadCaptcha`] on code mismatch and
    /// [`ServerError::PhoneAlreadyPaired`] if pairing already completed.
    pub fn complete_phone_pairing(
        &mut self,
        user_id: &str,
        captcha: &str,
        pid: &PhoneId,
        registration_id: RegistrationId,
    ) -> Result<(), ServerError> {
        let mut record = self.load_user(user_id)?;
        if record.phone_paired() {
            return Err(ServerError::PhoneAlreadyPaired);
        }
        match self.captchas.get(user_id) {
            Some(expected) if expected == captcha => {}
            _ => return Err(ServerError::BadCaptcha),
        }
        self.captchas.remove(user_id);
        record.pid_verifier = Some(self.derive_verifier(pid.as_bytes())?);
        record.registration_id = Some(registration_id);
        self.store_user(&record)
    }

    // -- account management --------------------------------------------------

    /// Adds a managed website account `(µ, d)` with a fresh seed `σ`.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::AccountExists`] for duplicates.
    pub fn add_account(
        &mut self,
        session: &SessionToken,
        username: Username,
        domain: Domain,
        policy: PasswordPolicy,
    ) -> Result<(), ServerError> {
        let mut record = self.session_user(session)?;
        if record.find_account(&username, &domain).is_some() {
            return Err(ServerError::AccountExists);
        }
        let seed = Seed::random(&mut self.rng);
        record.accounts.push(StoredAccount {
            entry: AccountEntry::new(username, domain, seed),
            policy,
            kind: AccountKind::Generated,
        });
        self.store_user(&record)
    }

    /// Lists the session user's managed accounts.
    ///
    /// # Errors
    ///
    /// Returns session errors.
    pub fn list_accounts(&self, session: &SessionToken) -> Result<Vec<AccountRef>, ServerError> {
        Ok(self
            .session_user(session)?
            .accounts
            .iter()
            .map(StoredAccount::account_ref)
            .collect())
    }

    /// Rotates the seed `σ` of one account — the paper's password-change
    /// mechanism (§III-A2).
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownAccount`] if the pair is not managed.
    pub fn rotate_seed(
        &mut self,
        session: &SessionToken,
        username: &Username,
        domain: &Domain,
    ) -> Result<(), ServerError> {
        let mut record = self.session_user(session)?;
        let seed = Seed::random(&mut self.rng);
        let account = record
            .find_account_mut(username, domain)
            .ok_or(ServerError::UnknownAccount)?;
        if !matches!(account.kind, AccountKind::Generated) {
            // The seed keys the vault ciphertext; rotating it would orphan
            // the stored password.
            return Err(ServerError::VaultedSeedRotation);
        }
        account.entry = account.entry.with_seed(seed);
        self.store_user(&record)
    }

    // -- password generation -------------------------------------------------

    /// Step 2–3 of Figure 1: derives `R = H(µ‖d‖σ)`, records the pending
    /// request, and returns the [`PushEnvelope`] to forward to the
    /// rendezvous service.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::NoPhonePaired`] without a paired phone and
    /// [`ServerError::UnknownAccount`] for unmanaged accounts.
    pub fn request_password(
        &mut self,
        session: &SessionToken,
        username: &Username,
        domain: &Domain,
        request_id: u64,
        reply_to: &str,
        now: SimInstant,
    ) -> Result<PushEnvelope, ServerError> {
        let _step2 = self
            .telemetry
            .span("server.step2_derive_request_us", WallClock::new());
        let record = self.session_user(session)?;
        let registration_id = record
            .registration_id
            .clone()
            .ok_or(ServerError::NoPhonePaired)?;
        let account = record
            .find_account(username, domain)
            .ok_or(ServerError::UnknownAccount)?;

        let request = PasswordRequest::derive(username, domain, account.entry.seed());
        self.pending.insert(
            request.clone(),
            PendingRequest {
                user_id: record.user_id.clone(),
                account: account.account_ref(),
                request_id,
                reply_to: reply_to.to_string(),
                issued_at: now,
                purpose: RequestPurpose::Generate,
            },
        );
        let push = PhonePush {
            request_id,
            request,
            origin: reply_to.to_string(),
            tstart: now,
            session_grant: self.consume_session_grant(&record.user_id),
        };
        self.stats.requests_pushed += 1;
        self.telemetry.counter("server.requests_pushed").inc();
        self.note_pending_depth();
        Ok(PushEnvelope {
            registration_id,
            data: push
                .to_wire()
                .map_err(|e| ServerError::Store(e.to_string()))?,
        })
    }

    /// Vault extension (§VIII): begins storing a user-chosen password. The
    /// returned push obtains the token that keys the sealing; the account is
    /// created when the token arrives.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::NoPhonePaired`] without a paired phone and
    /// [`ServerError::AccountExists`] for an already-managed pair.
    pub fn store_chosen_password(
        &mut self,
        session: &SessionToken,
        username: &Username,
        domain: &Domain,
        chosen_password: String,
        request_id: u64,
        reply_to: &str,
        now: SimInstant,
    ) -> Result<PushEnvelope, ServerError> {
        let record = self.session_user(session)?;
        let registration_id = record
            .registration_id
            .clone()
            .ok_or(ServerError::NoPhonePaired)?;
        if record.find_account(username, domain).is_some() {
            return Err(ServerError::AccountExists);
        }
        let seed = Seed::random(&mut self.rng);
        let request = PasswordRequest::derive(username, domain, &seed);
        self.pending.insert(
            request.clone(),
            PendingRequest {
                user_id: record.user_id.clone(),
                account: AccountRef {
                    username: username.clone(),
                    domain: domain.clone(),
                },
                request_id,
                reply_to: reply_to.to_string(),
                issued_at: now,
                purpose: RequestPurpose::StoreVaulted {
                    seed,
                    chosen_password,
                },
            },
        );
        let push = PhonePush {
            request_id,
            request,
            origin: reply_to.to_string(),
            tstart: now,
            session_grant: self.consume_session_grant(&record.user_id),
        };
        self.stats.requests_pushed += 1;
        self.telemetry.counter("server.requests_pushed").inc();
        self.note_pending_depth();
        Ok(PushEnvelope {
            registration_id,
            data: push
                // lint: allow(secret-encode) envelope bytes are sealed by SecureChannel before transmission
                .to_wire()
                .map_err(|e| ServerError::Store(e.to_string()))?,
        })
    }

    /// Session-mechanism extension (§VIII): installs a phone-issued grant;
    /// subsequent pushes carry it so the phone can auto-confirm. Returns the
    /// number of uses installed.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownUser`] for unregistered users.
    pub fn set_session_grant(
        &mut self,
        user_id: &str,
        grant: SessionGrantToken,
        max_uses: u32,
    ) -> Result<u32, ServerError> {
        // Validate the user exists; the grant's authenticity is established
        // by the phone↔server channel it arrived on.
        let _ = self.load_user(user_id)?;
        self.session_grants
            .insert(user_id.to_string(), (grant, max_uses));
        Ok(max_uses)
    }

    /// Pops one use of the user's active session grant, if any.
    fn consume_session_grant(&mut self, user_id: &str) -> Option<SessionGrantToken> {
        match self.session_grants.get_mut(user_id) {
            Some((grant, remaining)) if *remaining > 0 => {
                *remaining -= 1;
                let token = grant.clone();
                if *remaining == 0 {
                    self.session_grants.remove(user_id);
                }
                Some(token)
            }
            _ => None,
        }
    }

    /// Remaining uses on the user's session grant (0 when absent).
    pub fn session_grant_remaining(&self, user_id: &str) -> u32 {
        self.session_grants
            .get(user_id)
            .map(|(_, remaining)| *remaining)
            .unwrap_or(0)
    }

    /// Step 5 of Figure 1: consumes a returned token `T` and completes the
    /// pending request — rendering a generated password, opening a vault
    /// entry, or sealing a new one, depending on the request's purpose.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownRequest`] if no pending request matches
    /// the echoed `R`, and [`ServerError::VaultCorrupt`] if a vault
    /// ciphertext fails authentication.
    pub fn receive_token(&mut self, response: &TokenResponse) -> Result<TokenOutcome, ServerError> {
        let _step5 = self
            .telemetry
            .span("server.step5_assemble_password_us", WallClock::new());
        let pending = self.pending.claim(&response.request).ok_or_else(|| {
            self.stats.tokens_rejected += 1;
            self.telemetry.counter("server.tokens_rejected").inc();
            ServerError::UnknownRequest
        })?;
        self.note_pending_depth();
        let mut record = self.load_user(&pending.user_id)?;
        match pending.purpose.clone() {
            RequestPurpose::Generate => {
                let account = record
                    .find_account(&pending.account.username, &pending.account.domain)
                    .ok_or(ServerError::UnknownAccount)?;
                let password = match &account.kind {
                    AccountKind::Generated => {
                        let p =
                            derive_intermediate(&response.token, &record.oid, account.entry.seed());
                        account.policy.render(&p)
                    }
                    AccountKind::Vaulted { ciphertext } => {
                        let key = Self::vault_key(&response.token, &record, account.entry.seed());
                        let aad = pending.account.to_string();
                        let plaintext = aead::open(&key, ciphertext, aad.as_bytes())
                            .map_err(|_| ServerError::VaultCorrupt)?;
                        let chosen =
                            String::from_utf8(plaintext).map_err(|_| ServerError::VaultCorrupt)?;
                        GeneratedPassword::from_plaintext(chosen)
                    }
                };
                self.stats.passwords_generated += 1;
                self.telemetry.counter("server.passwords_generated").inc();
                Ok(TokenOutcome::PasswordReady { pending, password })
            }
            RequestPurpose::StoreVaulted {
                seed,
                chosen_password,
            } => {
                if record
                    .find_account(&pending.account.username, &pending.account.domain)
                    .is_some()
                {
                    return Err(ServerError::AccountExists);
                }
                let key = Self::vault_key(&response.token, &record, &seed);
                let aad = pending.account.to_string();
                let ciphertext = aead::seal(
                    &key,
                    chosen_password.as_bytes(),
                    aad.as_bytes(),
                    &mut self.rng,
                );
                record.accounts.push(StoredAccount {
                    entry: AccountEntry::new(
                        pending.account.username.clone(),
                        pending.account.domain.clone(),
                        seed,
                    ),
                    policy: PasswordPolicy::default(),
                    kind: AccountKind::Vaulted { ciphertext },
                });
                self.store_user(&record)?;
                Ok(TokenOutcome::VaultStored { pending })
            }
        }
    }

    /// The bilateral vault key `k = SHA-512(T ‖ Oid ‖ σ)` — structurally
    /// identical to the intermediate value of password generation, so every
    /// §IV breach argument carries over to vault entries.
    fn vault_key(token: &Token, record: &UserRecord, seed: &Seed) -> [u8; 64] {
        derive_intermediate(token, &record.oid, seed)
    }

    // -- recovery --------------------------------------------------------------

    /// Phone-compromise recovery (§III-C1).
    ///
    /// Verifies the master password and the uploaded `Pid` against the
    /// stored salted hash, regenerates every account's password using the
    /// uploaded (old) entry table so the user can log in and change them,
    /// then purges the old phone's `H(Pid)` and registration ID. Returns the
    /// recovered credentials and the purged registration ID (so the
    /// deployment can also unregister the device at the rendezvous).
    ///
    /// # Errors
    ///
    /// Returns credential errors, [`ServerError::PidMismatch`] when the
    /// backup's `Pid` does not hash to the stored verifier, or
    /// [`ServerError::NoPhonePaired`].
    pub fn recover_phone(
        &mut self,
        user_id: &str,
        master_password: &str,
        backup: &KpBackup,
    ) -> Result<(Vec<RecoveredCredential>, Option<RegistrationId>), ServerError> {
        let mut record = self.verify_master_password(user_id, master_password)?;
        let pid_verifier = record
            .pid_verifier
            .as_ref()
            .ok_or(ServerError::NoPhonePaired)?;
        if !pid_verifier.verify_expecting(backup.pid.as_bytes(), &self.config.kdf_policy)? {
            return Err(ServerError::PidMismatch);
        }
        let table = EntryTable::from_entries(backup.entries.clone())?;

        let mut credentials = Vec::with_capacity(record.accounts.len());
        for account in &record.accounts {
            let old_password = match &account.kind {
                AccountKind::Generated => {
                    derive_password(&account.entry, &record.oid, &table, &account.policy)?
                }
                AccountKind::Vaulted { ciphertext } => {
                    // Vault entries recover too: rebuild the bilateral key
                    // from the uploaded (old) table and open the ciphertext.
                    let request = PasswordRequest::derive(
                        account.entry.username(),
                        account.entry.domain(),
                        account.entry.seed(),
                    );
                    let token = table.token(&request)?;
                    let key = Self::vault_key(&token, &record, account.entry.seed());
                    let aad = account.account_ref().to_string();
                    let plaintext = aead::open(&key, ciphertext, aad.as_bytes())
                        .map_err(|_| ServerError::VaultCorrupt)?;
                    GeneratedPassword::from_plaintext(
                        String::from_utf8(plaintext).map_err(|_| ServerError::VaultCorrupt)?,
                    )
                }
            };
            credentials.push(RecoveredCredential {
                username: account.entry.username().clone(),
                domain: account.entry.domain().clone(),
                old_password,
            });
        }

        let old_registration = record.registration_id.take();
        record.pid_verifier = None;
        self.pending.purge_user(user_id);
        self.store_user(&record)?;
        Ok((credentials, old_registration))
    }

    /// Master-password-compromise recovery (§III-C2): the user logs in with
    /// the (compromised) master password, proves possession of the phone by
    /// sending `Pid`, and sets a new master password. All sessions are
    /// revoked.
    ///
    /// # Errors
    ///
    /// Returns credential errors, [`ServerError::NoPhonePaired`], or
    /// [`ServerError::PidMismatch`].
    pub fn change_master_password(
        &mut self,
        user_id: &str,
        old_master_password: &str,
        pid: &PhoneId,
        new_master_password: &str,
    ) -> Result<(), ServerError> {
        let mut record = self.verify_master_password(user_id, old_master_password)?;
        let pid_verifier = record
            .pid_verifier
            .as_ref()
            .ok_or(ServerError::NoPhonePaired)?;
        if !pid_verifier.verify_expecting(pid.as_bytes(), &self.config.kdf_policy)? {
            return Err(ServerError::PidMismatch);
        }
        // Re-deriving here is the upgrade path: a legacy CPU record becomes
        // a record at the deployment's current rung on password change.
        record.mp_verifier = self.derive_verifier(new_master_password.as_bytes())?;
        self.store_user(&record)?;
        self.sessions.revoke_all_for(user_id);
        Ok(())
    }

    // -- introspection -----------------------------------------------------

    /// A copy of one user's record — drives the Table I rendering.
    ///
    /// # Errors
    ///
    /// Returns [`ServerError::UnknownUser`] for missing users.
    pub fn user_record(&self, user_id: &str) -> Result<UserRecord, ServerError> {
        self.load_user(user_id)
    }

    /// Everything at rest on the server — **the §IV-C server-breach attack
    /// surface**. The attack harness calls this to model an attacker with
    /// full access to data at rest (and nothing else).
    pub fn export_data_at_rest_for_attack_model(&self) -> Vec<UserRecord> {
        self.users
            .scan()
            .map(|rows| rows.into_iter().map(|(_, r)| r).collect())
            .unwrap_or_default()
    }

    // -- wire adapter --------------------------------------------------------

    /// Dispatches one decoded protocol message, translating results into
    /// replies/pushes for the deployment to transmit. Every reply is wrapped
    /// in a [`Reply`] envelope echoing the request id, so hosts with many
    /// sessions in flight can route each answer to its session.
    pub fn handle_message(&mut self, message: ToServer, now: SimInstant) -> ServerReaction {
        fn envelope(request_id: u64, message: FromServer) -> Reply {
            Reply {
                request_id,
                message,
            }
        }
        let mut reaction = ServerReaction::default();
        match message {
            ToServer::Register {
                user_id,
                master_password,
                request_id,
                reply_to,
            } => {
                let reply = match self.register_user(&user_id, &master_password) {
                    Ok(()) => FromServer::Registered,
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::Login {
                user_id,
                master_password,
                request_id,
                reply_to,
            } => {
                let reply = match self.login(&user_id, &master_password) {
                    Ok(session) => FromServer::LoginOk { session },
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::Logout {
                session,
                request_id,
                reply_to,
            } => {
                self.logout(&session);
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, FromServer::LoggedOut)));
            }
            ToServer::BeginPhonePairing {
                session,
                request_id,
                reply_to,
            } => {
                let reply = match self.begin_phone_pairing(&session) {
                    Ok(captcha) => FromServer::PairingChallenge { captcha },
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::CompletePhonePairing {
                user_id,
                captcha,
                pid,
                registration_id,
                request_id,
                reply_to,
            } => {
                let reply =
                    match self.complete_phone_pairing(&user_id, &captcha, &pid, registration_id) {
                        Ok(()) => FromServer::PhonePaired,
                        Err(e) => FromServer::Error {
                            message: e.to_string(),
                        },
                    };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::AddAccount {
                session,
                username,
                domain,
                policy,
                request_id,
                reply_to,
            } => {
                let reply = match self.add_account(&session, username, domain, policy) {
                    Ok(()) => FromServer::AccountAdded,
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::ListAccounts {
                session,
                request_id,
                reply_to,
            } => {
                let reply = match self.list_accounts(&session) {
                    Ok(accounts) => FromServer::Accounts { accounts },
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::RotateSeed {
                session,
                username,
                domain,
                request_id,
                reply_to,
            } => {
                let reply = match self.rotate_seed(&session, &username, &domain) {
                    Ok(()) => FromServer::SeedRotated,
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::RequestPassword {
                session,
                username,
                domain,
                request_id,
                reply_to,
            } => {
                match self
                    .request_password(&session, &username, &domain, request_id, &reply_to, now)
                {
                    Ok(push) => {
                        reaction.push = Some(push);
                        reaction
                            .replies
                            .push((reply_to, envelope(request_id, FromServer::RequestPushed)));
                    }
                    Err(e) => reaction.replies.push((
                        reply_to,
                        envelope(
                            request_id,
                            FromServer::Error {
                                message: e.to_string(),
                            },
                        ),
                    )),
                }
            }
            ToServer::Token(response) => match self.receive_token(&response) {
                Ok(TokenOutcome::PasswordReady { pending, password }) => {
                    reaction.replies.push((
                        pending.reply_to.clone(),
                        envelope(
                            pending.request_id,
                            FromServer::PasswordReady {
                                account: pending.account,
                                password,
                                requested_at: pending.issued_at,
                            },
                        ),
                    ));
                }
                Ok(TokenOutcome::VaultStored { pending }) => {
                    reaction.replies.push((
                        pending.reply_to.clone(),
                        envelope(
                            pending.request_id,
                            FromServer::ChosenPasswordStored {
                                account: pending.account,
                            },
                        ),
                    ));
                }
                Err(_) => {
                    // An unmatched token is dropped silently on the wire; the
                    // rejection is visible in stats.
                }
            },
            ToServer::StoreChosenPassword {
                session,
                username,
                domain,
                chosen_password,
                request_id,
                reply_to,
            } => match self.store_chosen_password(
                &session,
                &username,
                &domain,
                chosen_password,
                request_id,
                &reply_to,
                now,
            ) {
                Ok(push) => {
                    reaction.push = Some(push);
                    reaction
                        .replies
                        .push((reply_to, envelope(request_id, FromServer::RequestPushed)));
                }
                Err(e) => reaction.replies.push((
                    reply_to,
                    envelope(
                        request_id,
                        FromServer::Error {
                            message: e.to_string(),
                        },
                    ),
                )),
            },
            ToServer::SessionGrant {
                user_id,
                grant,
                max_uses,
                request_id,
                reply_to,
            } => {
                let reply = match self.set_session_grant(&user_id, grant, max_uses) {
                    Ok(remaining_uses) => FromServer::SessionGranted { remaining_uses },
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::RecoverPhone {
                user_id,
                master_password,
                backup,
                request_id,
                reply_to,
            } => {
                let reply = match self.recover_phone(&user_id, &master_password, &backup) {
                    Ok((credentials, _old_reg)) => FromServer::PhoneRecovered { credentials },
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
            ToServer::ChangeMasterPassword {
                user_id,
                old_master_password,
                pid,
                new_master_password,
                request_id,
                reply_to,
            } => {
                let reply = match self.change_master_password(
                    &user_id,
                    &old_master_password,
                    &pid,
                    &new_master_password,
                ) {
                    Ok(()) => FromServer::MasterPasswordChanged,
                    Err(e) => FromServer::Error {
                        message: e.to_string(),
                    },
                };
                reaction
                    .replies
                    .push((reply_to, envelope(request_id, reply)));
            }
        }
        reaction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_core::EntryValue;

    fn server() -> AmnesiaServer {
        AmnesiaServer::new(ServerConfig {
            endpoint: "server".into(),
            seed: 99,
            kdf_policy: KdfPolicy::PAPER,
        })
    }

    fn pair_phone(s: &mut AmnesiaServer, user: &str, mp: &str) -> (PhoneId, RegistrationId) {
        let session = s.login(user, mp).unwrap();
        let captcha = s.begin_phone_pairing(&session).unwrap();
        let mut rng = SecretRng::seeded(1234);
        let pid = PhoneId::random(&mut rng);
        let reg = amnesia_rendezvous::RendezvousServer::new("gcm", 5).register_device("phone");
        s.complete_phone_pairing(user, &captcha, &pid, reg.clone())
            .unwrap();
        (pid, reg)
    }

    #[test]
    fn register_login_logout() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        assert!(matches!(
            s.register_user("alice", "other"),
            Err(ServerError::UserExists { .. })
        ));
        let session = s.login("alice", "mp").unwrap();
        assert_eq!(s.list_accounts(&session).unwrap(), vec![]);
        assert!(s.logout(&session));
        assert_eq!(s.list_accounts(&session), Err(ServerError::InvalidSession));
    }

    #[test]
    fn wrong_password_rejected_and_lockout_engages() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        for _ in 0..9 {
            assert!(matches!(
                s.login("alice", "wrong"),
                Err(ServerError::BadCredentials) | Err(ServerError::AccountLocked { .. })
            ));
        }
        // 10th failure locks.
        assert!(matches!(
            s.login("alice", "wrong"),
            Err(ServerError::AccountLocked { .. })
        ));
        // Even the correct password is now refused.
        assert!(matches!(
            s.login("alice", "mp"),
            Err(ServerError::AccountLocked { .. })
        ));
    }

    #[test]
    fn pairing_flow() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        let session = s.login("alice", "mp").unwrap();
        let captcha = s.begin_phone_pairing(&session).unwrap();
        assert_eq!(captcha.len(), 6);

        let mut rng = SecretRng::seeded(7);
        let pid = PhoneId::random(&mut rng);
        let reg = amnesia_rendezvous::RendezvousServer::new("gcm", 5).register_device("phone");

        // Wrong captcha rejected.
        assert_eq!(
            s.complete_phone_pairing("alice", "000000x", &pid, reg.clone()),
            Err(ServerError::BadCaptcha)
        );
        s.complete_phone_pairing("alice", &captcha, &pid, reg)
            .unwrap();
        let record = s.user_record("alice").unwrap();
        assert!(record.phone_paired());
        // Pid stored hashed, not plaintext.
        assert!(record.pid_verifier.as_ref().unwrap().verify(pid.as_bytes()));

        // Re-pairing while paired is refused.
        let session = s.login("alice", "mp").unwrap();
        assert_eq!(
            s.begin_phone_pairing(&session),
            Err(ServerError::PhoneAlreadyPaired)
        );
    }

    #[test]
    fn account_management() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        let session = s.login("alice", "mp").unwrap();
        let u = Username::new("Alice").unwrap();
        let d = Domain::new("mail.google.com").unwrap();
        s.add_account(&session, u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        assert_eq!(
            s.add_account(&session, u.clone(), d.clone(), PasswordPolicy::default()),
            Err(ServerError::AccountExists)
        );
        assert_eq!(s.list_accounts(&session).unwrap().len(), 1);

        let before = s
            .user_record("alice")
            .unwrap()
            .find_account(&u, &d)
            .unwrap()
            .entry
            .seed()
            .clone();
        s.rotate_seed(&session, &u, &d).unwrap();
        let after = s
            .user_record("alice")
            .unwrap()
            .find_account(&u, &d)
            .unwrap()
            .entry
            .seed()
            .clone();
        assert_ne!(before, after);
    }

    #[test]
    fn full_generation_handshake() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        pair_phone(&mut s, "alice", "mp");
        let session = s.login("alice", "mp").unwrap();
        let u = Username::new("Alice").unwrap();
        let d = Domain::new("site.com").unwrap();
        s.add_account(&session, u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();

        let push = s
            .request_password(&session, &u, &d, 9001, "browser-1", SimInstant::EPOCH)
            .unwrap();
        let phone_push = PhonePush::from_wire(&push.data).unwrap();
        assert_eq!(phone_push.request_id, 9001);

        // Simulate the phone: compute the token over its entry table.
        let mut rng = SecretRng::seeded(55);
        let table = EntryTable::random(&mut rng, 100);
        let token = table.token(&phone_push.request).unwrap();
        let outcome = s
            .receive_token(&TokenResponse {
                request_id: phone_push.request_id,
                request: phone_push.request.clone(),
                token: token.clone(),
                tstart: phone_push.tstart,
            })
            .unwrap();
        let TokenOutcome::PasswordReady { pending, password } = outcome else {
            panic!("expected PasswordReady");
        };
        assert_eq!(pending.reply_to, "browser-1");
        assert_eq!(pending.request_id, 9001);
        assert_eq!(password.len(), 32);

        // The password equals the logical one-shot derivation.
        let record = s.user_record("alice").unwrap();
        let account = record.find_account(&u, &d).unwrap();
        let expected =
            derive_password(&account.entry, &record.oid, &table, &account.policy).unwrap();
        assert_eq!(password, expected);

        // A replayed token no longer matches a pending request.
        assert!(matches!(
            s.receive_token(&TokenResponse {
                request_id: phone_push.request_id,
                request: phone_push.request,
                token,
                tstart: phone_push.tstart,
            }),
            Err(ServerError::UnknownRequest)
        ));
        assert_eq!(s.stats().passwords_generated, 1);
        assert_eq!(s.stats().tokens_rejected, 1);
    }

    #[test]
    fn request_password_requires_paired_phone() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        let session = s.login("alice", "mp").unwrap();
        let u = Username::new("a").unwrap();
        let d = Domain::new("d.com").unwrap();
        s.add_account(&session, u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        assert_eq!(
            s.request_password(&session, &u, &d, 1, "b", SimInstant::EPOCH),
            Err(ServerError::NoPhonePaired)
        );
    }

    #[test]
    fn phone_recovery_regenerates_and_purges() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        let (pid, _reg) = pair_phone(&mut s, "alice", "mp");
        let session = s.login("alice", "mp").unwrap();
        let u = Username::new("a").unwrap();
        let d = Domain::new("d.com").unwrap();
        s.add_account(&session, u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();

        let mut rng = SecretRng::seeded(77);
        let entries: Vec<EntryValue> = (0..50).map(|_| EntryValue::random(&mut rng)).collect();
        let backup = KpBackup {
            pid: pid.clone(),
            entries: entries.clone(),
        };
        let (credentials, old_reg) = s.recover_phone("alice", "mp", &backup).unwrap();
        assert!(old_reg.is_some());
        assert_eq!(credentials.len(), 1);

        // The recovered password equals the old-table derivation.
        let record = s.user_record("alice").unwrap();
        let account = record.find_account(&u, &d).unwrap();
        let table = EntryTable::from_entries(entries).unwrap();
        let expected =
            derive_password(&account.entry, &record.oid, &table, &account.policy).unwrap();
        assert_eq!(credentials[0].old_password, expected);

        // Old phone data purged.
        assert!(!record.phone_paired());
        assert!(record.pid_verifier.is_none());
        assert!(record.registration_id.is_none());
    }

    #[test]
    fn phone_recovery_rejects_wrong_pid() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        pair_phone(&mut s, "alice", "mp");
        let mut rng = SecretRng::seeded(88);
        let backup = KpBackup {
            pid: PhoneId::random(&mut rng), // not the paired phone
            entries: vec![EntryValue::random(&mut rng)],
        };
        assert_eq!(
            s.recover_phone("alice", "mp", &backup),
            Err(ServerError::PidMismatch)
        );
    }

    #[test]
    fn master_password_change_requires_phone_proof() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        let (pid, _) = pair_phone(&mut s, "alice", "mp");
        let mut rng = SecretRng::seeded(89);
        let wrong_pid = PhoneId::random(&mut rng);

        assert_eq!(
            s.change_master_password("alice", "mp", &wrong_pid, "new-mp"),
            Err(ServerError::PidMismatch)
        );
        s.change_master_password("alice", "mp", &pid, "new-mp")
            .unwrap();
        assert!(matches!(
            s.login("alice", "mp"),
            Err(ServerError::BadCredentials)
        ));
        assert!(s.login("alice", "new-mp").is_ok());
    }

    #[test]
    fn master_password_change_revokes_sessions() {
        let mut s = server();
        s.register_user("alice", "mp").unwrap();
        let (pid, _) = pair_phone(&mut s, "alice", "mp");
        let session = s.login("alice", "mp").unwrap();
        s.change_master_password("alice", "mp", &pid, "new")
            .unwrap();
        assert_eq!(s.list_accounts(&session), Err(ServerError::InvalidSession));
    }

    #[test]
    fn handle_message_wire_adapter() {
        let mut s = server();
        let r = s.handle_message(
            ToServer::Register {
                user_id: "bob".into(),
                master_password: "pw".into(),
                request_id: 11,
                reply_to: "browser".into(),
            },
            SimInstant::EPOCH,
        );
        assert_eq!(
            r.replies,
            vec![(
                "browser".into(),
                Reply {
                    request_id: 11,
                    message: FromServer::Registered
                }
            )]
        );

        let r = s.handle_message(
            ToServer::Login {
                user_id: "bob".into(),
                master_password: "bad".into(),
                request_id: 12,
                reply_to: "browser".into(),
            },
            SimInstant::EPOCH,
        );
        assert_eq!(r.replies[0].1.request_id, 12);
        assert!(matches!(r.replies[0].1.message, FromServer::Error { .. }));
    }

    #[test]
    fn breach_export_contains_no_plaintext_secrets() {
        let mut s = server();
        s.register_user("alice", "my-master-password").unwrap();
        let (pid, _) = pair_phone(&mut s, "alice", "my-master-password");
        let dump = s.export_data_at_rest_for_attack_model();
        assert_eq!(dump.len(), 1);
        let record = &dump[0];
        // The dump holds verifiers, not the master password or Pid.
        assert!(record.mp_verifier.hash_bytes() != b"my-master-password");
        assert!(
            record.pid_verifier.as_ref().unwrap().hash_bytes().to_vec() != pid.as_bytes().to_vec()
        );
    }

    use amnesia_crypto::SecretRng;
}
