//! Server-side persistent state — the concrete realization of Table I.

use crate::auth::Verifier;
use amnesia_core::{AccountEntry, Domain, GeneratedPassword, OnlineId, PasswordPolicy, Username};
use amnesia_crypto::hex;
use amnesia_rendezvous::RegistrationId;
use std::fmt;

/// A `(username, domain)` pair naming one managed website account.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AccountRef {
    /// The account username `µ`.
    pub username: Username,
    /// The account domain `d`.
    pub domain: Domain,
}
amnesia_store::record_struct! { AccountRef { username, domain } }

impl fmt::Display for AccountRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.username, self.domain)
    }
}

/// How an account's password is produced.
///
/// The paper's base design is purely generative; §VIII plans "a vault ...
/// in a fully fledged Amnesia system" for user-chosen passwords. The vault
/// variant stores the chosen password sealed under the bilateral key
/// `k = SHA-512(T ‖ Oid ‖ σ)`, so the ciphertext at rest is useless without
/// a token from the phone — data-breach resistance is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum AccountKind {
    /// Password is rendered from the template function (the paper's §III-B).
    Generated,
    /// Password is user-chosen, stored AEAD-sealed under the bilateral key.
    Vaulted {
        /// `nonce ‖ ciphertext ‖ tag` produced by `amnesia_crypto::aead`.
        ciphertext: Vec<u8>,
    },
}
amnesia_store::record_enum! { AccountKind { 0 => Generated, 1 => Vaulted { ciphertext } } }

/// One managed account: the `(µ, d, σ)` entry of `Ks` plus the per-account
/// template policy (§III-B4 lets users adjust charset and length per site).
#[derive(Clone, Debug, PartialEq)]
pub struct StoredAccount {
    /// The `(µ, d, σ)` entry.
    pub entry: AccountEntry,
    /// Template policy used when rendering this account's password.
    pub policy: PasswordPolicy,
    /// Generated (template) or vaulted (chosen, sealed).
    pub kind: AccountKind,
}
amnesia_store::record_struct! { StoredAccount { entry, policy, kind } }

impl StoredAccount {
    /// The account's reference key.
    pub fn account_ref(&self) -> AccountRef {
        AccountRef {
            username: self.entry.username().clone(),
            domain: self.entry.domain().clone(),
        }
    }
}

/// Everything the Amnesia server stores about one user (paper Table I).
#[derive(Clone, Debug)]
pub struct UserRecord {
    /// Login name for the Amnesia web account.
    pub user_id: String,
    /// The 512-bit online ID `Oid` (part of `Ks`).
    pub oid: OnlineId,
    /// Salted verifier for the master password (`H(MP+salt)`).
    pub mp_verifier: Verifier,
    /// Salted verifier for the paired phone's `Pid` (`H(Pid+salt)`); `None`
    /// until a phone completes pairing.
    pub pid_verifier: Option<Verifier>,
    /// The rendezvous registration ID, stored in plaintext per Table I.
    pub registration_id: Option<RegistrationId>,
    /// Managed website accounts `{(µ, d, σ)}`.
    pub accounts: Vec<StoredAccount>,
}
amnesia_store::record_struct! {
    UserRecord { user_id, oid, mp_verifier, pid_verifier, registration_id, accounts }
}

impl UserRecord {
    /// Finds a managed account by `(username, domain)`.
    pub fn find_account(&self, username: &Username, domain: &Domain) -> Option<&StoredAccount> {
        self.accounts
            .iter()
            .find(|a| a.entry.username() == username && a.entry.domain() == domain)
    }

    /// Mutable variant of [`find_account`](Self::find_account).
    pub fn find_account_mut(
        &mut self,
        username: &Username,
        domain: &Domain,
    ) -> Option<&mut StoredAccount> {
        self.accounts
            .iter_mut()
            .find(|a| a.entry.username() == username && a.entry.domain() == domain)
    }

    /// Whether a phone is currently paired.
    pub fn phone_paired(&self) -> bool {
        self.pid_verifier.is_some() && self.registration_id.is_some()
    }

    /// Renders this record in the layout of the paper's **Table I**
    /// (values truncated like the paper's `0xa457fe1…`).
    pub fn render_table_i(&self) -> String {
        fn trunc(hexstr: &str) -> String {
            format!("0x{}...", &hexstr[..7.min(hexstr.len())])
        }
        let mut out = String::new();
        out.push_str("Data                 | Value\n");
        out.push_str("---------------------+---------------------------------------------\n");
        out.push_str(&format!(
            "Oid                  | {}\n",
            // lint: allow(secret-format) paper-style render of the truncated Oid
            trunc(&self.oid.to_hex())
        ));
        out.push_str(&format!(
            "Registration ID      | {}\n",
            self.registration_id
                .as_ref()
                .map(|r| {
                    let s = r.as_str();
                    format!("{}...", &s[..16.min(s.len())])
                })
                .unwrap_or_else(|| "(none)".into())
        ));
        out.push_str(&format!(
            "H(MP + salt)         | {}\n",
            trunc(&hex::encode(self.mp_verifier.hash_bytes()))
        ));
        out.push_str(&format!(
            "H(Pid + salt)        | {}\n",
            self.pid_verifier
                .as_ref()
                .map(|v| trunc(&hex::encode(v.hash_bytes())))
                .unwrap_or_else(|| "(none)".into())
        ));
        out.push_str(&format!(
            "Salt                 | {}\n",
            trunc(&self.mp_verifier.salt().to_hex())
        ));
        for (i, account) in self.accounts.iter().enumerate() {
            out.push_str(&format!(
                "(u, d, sigma)_{:<6} | ({}, {}, {})\n",
                i + 1,
                account.entry.username(),
                account.entry.domain(),
                trunc(&account.entry.seed().to_hex())
            ));
        }
        out
    }
}

/// One regenerated credential handed to the user during phone recovery
/// (§III-C1): the *old* password, which the user needs in order to log into
/// the website and change it.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoveredCredential {
    /// The account username.
    pub username: Username,
    /// The account domain.
    pub domain: Domain,
    /// The password as generated with the old phone's entry table.
    pub old_password: GeneratedPassword,
}
amnesia_store::record_struct! { RecoveredCredential { username, domain, old_password } }

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_core::Seed;
    use amnesia_crypto::SecretRng;

    fn record() -> UserRecord {
        let mut rng = SecretRng::seeded(31);
        UserRecord {
            user_id: "alice".into(),
            oid: OnlineId::random(&mut rng),
            mp_verifier: Verifier::derive(b"mp", &amnesia_crypto::KdfPolicy::PAPER, &mut rng)
                .unwrap(),
            pid_verifier: None,
            registration_id: None,
            accounts: vec![StoredAccount {
                entry: AccountEntry::new(
                    Username::new("Alice").unwrap(),
                    Domain::new("mail.google.com").unwrap(),
                    Seed::random(&mut rng),
                ),
                policy: PasswordPolicy::default(),
                kind: AccountKind::Generated,
            }],
        }
    }

    #[test]
    fn find_account_by_pair() {
        let r = record();
        let u = Username::new("Alice").unwrap();
        let d = Domain::new("mail.google.com").unwrap();
        assert!(r.find_account(&u, &d).is_some());
        assert!(r.find_account(&Username::new("Bob").unwrap(), &d).is_none());
        assert!(r
            .find_account(&u, &Domain::new("other.com").unwrap())
            .is_none());
    }

    #[test]
    fn phone_paired_requires_both_fields() {
        let mut r = record();
        assert!(!r.phone_paired());
        let mut rng = SecretRng::seeded(32);
        r.pid_verifier =
            Some(Verifier::derive(b"pid", &amnesia_crypto::KdfPolicy::PAPER, &mut rng).unwrap());
        assert!(!r.phone_paired());
    }

    #[test]
    fn table_i_render_contains_all_rows() {
        let r = record();
        let table = r.render_table_i();
        for needle in [
            "Oid",
            "Registration ID",
            "H(MP + salt)",
            "H(Pid + salt)",
            "Salt",
        ] {
            assert!(table.contains(needle), "missing {needle}: \n{table}");
        }
        assert!(table.contains("mail.google.com"));
        assert!(table.contains("(none)"));
        // Secrets must appear truncated, not in full.
        assert!(!table.contains(&r.oid.to_hex()));
    }

    #[test]
    fn account_ref_display() {
        let r = record();
        assert_eq!(
            r.accounts[0].account_ref().to_string(),
            "Alice@mail.google.com"
        );
    }
}
