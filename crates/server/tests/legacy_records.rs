//! Compatibility of pre-ladder verifier records with the [`KdfPolicy`]
//! ladder (PR 10).
//!
//! Before the ladder, a [`Verifier`] was `{ salt, hash, iterations: u32 }`
//! on the wire. The versioned encoding keeps CPU-policy records
//! byte-identical to that layout, so databases written by older builds —
//! including durable write-ahead-logged stores from PR 9 — must reopen and
//! verify unchanged. These tests write records through *mirror structs*
//! that reproduce the legacy layout exactly, then reopen them through the
//! real server.

use amnesia_core::{OnlineId, Salt};
use amnesia_crypto::{KdfPolicy, SecretRng};
use amnesia_server::auth::Verifier;
use amnesia_server::{AmnesiaServer, ServerConfig, ServerError};
use amnesia_store::Database;
use std::path::PathBuf;

/// The pre-PR-10 verifier wire layout, reproduced field-for-field.
struct LegacyVerifier {
    salt: Salt,
    hash: Vec<u8>,
    iterations: u32,
}
amnesia_store::record_struct! { LegacyVerifier { salt, hash, iterations } }

/// The pre-PR-10 user record layout (identical shape; only the verifier
/// encoding differs between generations).
struct LegacyUserRecord {
    user_id: String,
    oid: OnlineId,
    mp_verifier: LegacyVerifier,
    pid_verifier: Option<LegacyVerifier>,
    registration_id: Option<amnesia_rendezvous::RegistrationId>,
    accounts: Vec<amnesia_server::StoredAccount>,
}
amnesia_store::record_struct! {
    LegacyUserRecord { user_id, oid, mp_verifier, pid_verifier, registration_id, accounts }
}

const LEGACY_ITERATIONS: u32 = 3;
const MASTER_PASSWORD: &str = "correct horse battery staple";

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "amnesia-legacy-{name}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn legacy_mirror(v: &Verifier, iterations: u32) -> LegacyVerifier {
    LegacyVerifier {
        salt: v.salt().clone(),
        hash: v.hash_bytes().to_vec(),
        iterations,
    }
}

/// Writes a legacy-layout user record through the PR 9 durable (WAL) path
/// and returns the directory it lives in.
fn write_legacy_durable_store(name: &str) -> PathBuf {
    let dir = temp_dir(name);
    let policy = KdfPolicy::Cpu {
        iterations: LEGACY_ITERATIONS,
    };
    let mut rng = SecretRng::seeded(0xA11CE);
    let mp = Verifier::derive(MASTER_PASSWORD.as_bytes(), &policy, &mut rng).unwrap();
    let record = LegacyUserRecord {
        user_id: "alice".into(),
        oid: OnlineId::random(&mut rng),
        mp_verifier: legacy_mirror(&mp, LEGACY_ITERATIONS),
        pid_verifier: None,
        registration_id: None,
        accounts: Vec::new(),
    };
    let db = Database::open_durable(&dir).unwrap();
    db.table::<String, LegacyUserRecord>("users")
        .insert(&"alice".to_string(), &record)
        .unwrap();
    drop(db);
    dir
}

fn server_config(kdf_policy: KdfPolicy) -> ServerConfig {
    ServerConfig {
        endpoint: "legacy-test-server".into(),
        seed: 7,
        kdf_policy,
    }
}

#[test]
fn legacy_wal_store_reopens_and_verifies_under_cpu_policy() {
    let dir = write_legacy_durable_store("cpu-reopen");

    let mut server = AmnesiaServer::open_durable(
        server_config(KdfPolicy::Cpu {
            iterations: LEGACY_ITERATIONS,
        }),
        &dir,
    )
    .unwrap();

    // The bare-iterations record decodes as a CPU policy…
    let record = server.user_record("alice").unwrap();
    assert_eq!(
        *record.mp_verifier.policy(),
        KdfPolicy::Cpu {
            iterations: LEGACY_ITERATIONS
        }
    );
    // …and still authenticates.
    server.login("alice", MASTER_PASSWORD).unwrap();
    assert!(matches!(
        server.login("alice", "wrong password"),
        Err(ServerError::BadCredentials { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_record_verifies_under_stronger_deployment_policy() {
    // Upgrading a deployment to a memory-hard rung must not lock legacy
    // users out: verification re-derives under the *stored* (weaker)
    // policy, and the record is re-derived at the stronger rung on the
    // next password change.
    let dir = write_legacy_durable_store("upgrade-reopen");
    let mut server =
        AmnesiaServer::open_durable(server_config(KdfPolicy::INTERACTIVE), &dir).unwrap();
    server.login("alice", MASTER_PASSWORD).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn memory_hard_record_round_trips_through_durable_store() {
    let dir = temp_dir("memhard-roundtrip");
    // Small rung so the test stays fast; class is still MemoryHard.
    let tiny = KdfPolicy::MemoryHard {
        log_n: 4,
        r: 1,
        p: 1,
    };

    let mut server = AmnesiaServer::open_durable(server_config(tiny), &dir).unwrap();
    server.register_user("bob", MASTER_PASSWORD).unwrap();
    drop(server);

    let mut reopened = AmnesiaServer::open_durable(server_config(tiny), &dir).unwrap();
    assert_eq!(
        *reopened.user_record("bob").unwrap().mp_verifier.policy(),
        tiny
    );
    reopened.login("bob", MASTER_PASSWORD).unwrap();

    // Reopening the same store under a CPU-only config refuses to serve
    // the memory-hard record: downgrades are loud, never silent.
    drop(reopened);
    let mut downgraded =
        AmnesiaServer::open_durable(server_config(KdfPolicy::Cpu { iterations: 10 }), &dir)
            .unwrap();
    assert!(matches!(
        downgraded.login("bob", MASTER_PASSWORD),
        Err(ServerError::PolicyDowngrade { .. })
    ));
    let _ = std::fs::remove_dir_all(&dir);
}
