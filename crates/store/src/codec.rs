//! A compact, non-self-describing binary codec ("abin"), built on the
//! in-repo [`Record`] trait — no external serialization framework.
//!
//! This is the wire/disk format used by every persisted row and every
//! simulated network payload in the workspace. Encoding rules:
//!
//! * integers: fixed-width little-endian; collection lengths and enum
//!   variant indices as LEB128 varints;
//! * `bool`: one byte, `0` or `1`;
//! * `str`: varint length followed by the raw UTF-8 bytes;
//! * `Option`: one tag byte then the value if present;
//! * structs/tuples: fields in declaration order, no field names;
//! * enums: varint variant index then the payload;
//! * fixed byte arrays `[u8; N]`: the raw `N` bytes, no length prefix.
//!
//! The format is not self-describing, so decoding requires the same type
//! that encoded the value — exactly the property a typed table store needs,
//! and it keeps rows small.
//!
//! Types opt in by implementing [`Record`], usually via the
//! [`record_struct!`](crate::record_struct), [`record_tuple!`](crate::record_tuple)
//! and [`record_enum!`](crate::record_enum) helper macros:
//!
//! ```
//! #[derive(PartialEq, Debug)]
//! struct Row(String, u32);
//! amnesia_store::record_tuple! { Row(name, count) }
//!
//! # fn main() -> Result<(), amnesia_store::codec::CodecError> {
//! let bytes = amnesia_store::codec::to_bytes(&Row("x".into(), 7))?;
//! let row: Row = amnesia_store::codec::from_bytes(&bytes)?;
//! assert_eq!(row, Row("x".into(), 7));
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors produced while encoding or decoding the binary format.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Decoding finished but input bytes remained.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A char code point was invalid.
    InvalidChar(u32),
    /// String bytes were not valid UTF-8.
    InvalidUtf8,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A length prefix was implausibly large for the remaining input.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// An enum variant index had no corresponding variant.
    InvalidVariant(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            CodecError::InvalidBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            CodecError::InvalidChar(c) => write!(f, "invalid char code point {c:#x}"),
            CodecError::InvalidUtf8 => write!(f, "string bytes are not valid UTF-8"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::LengthOverflow {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining input {remaining}"
            ),
            CodecError::InvalidVariant(idx) => write!(f, "unknown enum variant index {idx}"),
        }
    }
}

impl Error for CodecError {}

/// A value encodable to and decodable from the abin byte format.
///
/// Implementations must be lossless and deterministic: `decode(encode(v))`
/// yields a value equal to `v`, and equal values encode to identical bytes
/// (the checksummed snapshots depend on this).
pub trait Record: Sized {
    /// Appends this value's encoding to `out`. Encoding is infallible.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value from the front of `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on truncated or malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Serializes `value` into the compact binary format.
///
/// # Errors
///
/// Encoding itself cannot fail; the `Result` is kept so call sites share one
/// error-handling shape with [`from_bytes`].
pub fn to_bytes<T: Record>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    value.encode(&mut out);
    Ok(out)
}

/// Deserializes a value previously produced by [`to_bytes`].
///
/// # Errors
///
/// Fails on malformed input, type mismatches, or trailing bytes.
pub fn from_bytes<T: Record>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader { input: bytes };
    let value = T::decode(&mut r)?;
    if !r.input.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: r.input.len(),
        });
    }
    Ok(value)
}

/// Appends `v` to `out` as a LEB128 varint.
pub fn write_varint(v: u64, out: &mut Vec<u8>) {
    let mut v = v;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// A cursor over the bytes being decoded.
pub struct Reader<'a> {
    input: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps `bytes` for decoding. Most callers want [`from_bytes`], which
    /// additionally rejects trailing input.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { input: bytes }
    }

    /// Unread bytes remaining.
    pub fn remaining(&self) -> usize {
        self.input.len()
    }

    /// Consumes and returns the next `n` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    /// Consumes the next `N` bytes as a fixed-size array.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnexpectedEof`] on short input.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        <[u8; N]>::try_from(self.take(N)?).map_err(|_| CodecError::UnexpectedEof)
    }

    /// Reads a LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::VarintOverflow`] past 64 bits, or EOF.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 {
                return Err(CodecError::VarintOverflow);
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a varint length prefix and sanity-checks it against the
    /// remaining input, so hostile prefixes fail fast instead of driving a
    /// huge allocation.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::LengthOverflow`] for implausible lengths.
    pub fn length(&mut self) -> Result<usize, CodecError> {
        let declared = self.varint()?;
        if declared > self.input.len() as u64 {
            return Err(CodecError::LengthOverflow {
                declared,
                remaining: self.input.len(),
            });
        }
        Ok(declared as usize)
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_record_le {
    ($($ty:ty),+) => {
        $(
            impl Record for $ty {
                fn encode(&self, out: &mut Vec<u8>) {
                    out.extend_from_slice(&self.to_le_bytes());
                }
                fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                    Ok(<$ty>::from_le_bytes(r.take_array()?))
                }
            }
        )+
    };
}

impl_record_le!(i8, i16, i32, i64, i128, u16, u32, u64, u128, f32, f64);

impl Record for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(1)?[0])
    }
}

impl Record for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::InvalidBool(b)),
        }
    }
}

// `usize` travels as u64 so 32- and 64-bit encodings agree.
impl Record for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(r)?;
        usize::try_from(v).map_err(|_| CodecError::LengthOverflow {
            declared: v,
            remaining: r.remaining(),
        })
    }
}

impl Record for char {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u32).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let code = u32::decode(r)?;
        char::from_u32(code).ok_or(CodecError::InvalidChar(code))
    }
}

impl Record for () {
    fn encode(&self, _out: &mut Vec<u8>) {}
    fn decode(_r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(())
    }
}

impl Record for String {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.length()?;
        let bytes = r.take(len)?;
        std::str::from_utf8(bytes)
            .map(str::to_owned)
            .map_err(|_| CodecError::InvalidUtf8)
    }
}

impl<const N: usize> Record for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        r.take_array()
    }
}

impl<T: Record> Record for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.length()?;
        let mut out = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Record> Record for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            b => Err(CodecError::InvalidBool(b)),
        }
    }
}

impl<T: Record> Record for Box<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Box::new(T::decode(r)?))
    }
}

impl<K: Record + Ord, V: Record> Record for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        write_varint(self.len() as u64, out);
        for (k, v) in self {
            k.encode(out);
            v.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = r.length()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! impl_record_tuple {
    ($(($($t:ident . $idx:tt),+))+) => {
        $(
            impl<$($t: Record),+> Record for ($($t,)+) {
                fn encode(&self, out: &mut Vec<u8>) {
                    $( self.$idx.encode(out); )+
                }
                fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                    Ok(($($t::decode(r)?,)+))
                }
            }
        )+
    };
}

impl_record_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Derive-style helper macros
// ---------------------------------------------------------------------------

/// Implements [`Record`](crate::codec::Record) for a struct with named
/// fields, encoding the listed fields in order.
///
/// ```
/// #[derive(PartialEq, Debug)]
/// struct Point { x: f64, y: f64 }
/// amnesia_store::record_struct! { Point { x, y } }
///
/// let bytes = amnesia_store::codec::to_bytes(&Point { x: 1.0, y: -2.0 }).unwrap();
/// assert_eq!(bytes.len(), 16);
/// ```
#[macro_export]
macro_rules! record_struct {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::codec::Record for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                $( $crate::codec::Record::encode(&self.$field, out); )+
            }
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> Result<Self, $crate::codec::CodecError> {
                Ok($name {
                    $( $field: $crate::codec::Record::decode(r)?, )+
                })
            }
        }
    };
}

/// Implements [`Record`](crate::codec::Record) for a tuple struct; the
/// identifiers are binders naming each positional field.
///
/// ```
/// #[derive(PartialEq, Debug)]
/// struct Pair(u8, String);
/// amnesia_store::record_tuple! { Pair(a, b) }
/// ```
#[macro_export]
macro_rules! record_tuple {
    ($name:ident ( $($field:ident),+ $(,)? )) => {
        impl $crate::codec::Record for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                let $name($($field),+) = self;
                $( $crate::codec::Record::encode($field, out); )+
            }
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> Result<Self, $crate::codec::CodecError> {
                Ok($name($( $crate::__record_decode_one!(r, $field) ),+))
            }
        }
    };
}

/// Implements [`Record`](crate::codec::Record) for an enum. Each variant is
/// listed with an explicit wire index (documenting the format and keeping it
/// stable under reordering), and tuple/struct payload fields are named as
/// binders.
///
/// ```
/// #[derive(PartialEq, Debug)]
/// enum Shape {
///     Unit,
///     Newtype(u64),
///     Tuple(i8, String),
///     Struct { x: f64, y: f64 },
/// }
/// amnesia_store::record_enum! { Shape {
///     0 => Unit,
///     1 => Newtype(v),
///     2 => Tuple(a, b),
///     3 => Struct { x, y },
/// } }
/// ```
#[macro_export]
macro_rules! record_enum {
    ($name:ident {
        $(
            $idx:literal => $variant:ident
                $( ( $($tfield:ident),+ $(,)? ) )?
                $( { $($sfield:ident),+ $(,)? } )?
        ),+ $(,)?
    }) => {
        impl $crate::codec::Record for $name {
            fn encode(&self, out: &mut Vec<u8>) {
                match self {
                    $(
                        $name::$variant
                            $( ( $($tfield),+ ) )?
                            $( { $($sfield),+ } )?
                        => {
                            $crate::codec::write_varint($idx as u64, out);
                            $( $( $crate::codec::Record::encode($tfield, out); )+ )?
                            $( $( $crate::codec::Record::encode($sfield, out); )+ )?
                        }
                    )+
                }
            }
            fn decode(
                r: &mut $crate::codec::Reader<'_>,
            ) -> Result<Self, $crate::codec::CodecError> {
                match r.varint()? {
                    $(
                        $idx => Ok($name::$variant
                            $( ( $( $crate::__record_decode_one!(r, $tfield) ),+ ) )?
                            $( { $( $sfield: $crate::codec::Record::decode(r)? ),+ } )?
                        ),
                    )+
                    other => Err($crate::codec::CodecError::InvalidVariant(other)),
                }
            }
        }
    };
}

/// Internal: expands to one decode call per ignored field binder.
#[doc(hidden)]
#[macro_export]
macro_rules! __record_decode_one {
    ($r:ident, $field:ident) => {
        $crate::codec::Record::decode($r)?
    };
}

// `amnesia_crypto::KdfPolicy` crosses the store boundary inside
// policy-tagged verifier records. The wire form lives here because this
// crate owns `Record` (coherence forbids implementing it downstream):
// variant 0 is `Cpu`, 1 is `MemoryHard`, payload fields in declaration
// order. Versioning of the *surrounding* verifier record (legacy
// bare-iterations rows) is handled by the record's own encoding in
// `amnesia-server`; this impl only defines the policy payload.
use amnesia_crypto::KdfPolicy;
crate::record_enum! { KdfPolicy {
    0 => Cpu { iterations },
    1 => MemoryHard { log_n, r, p },
} }

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Record + PartialEq + fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[derive(PartialEq, Debug)]
    struct Nested {
        name: String,
        tags: Vec<u32>,
        blob: Vec<u8>,
        maybe: Option<Box<Nested>>,
    }
    crate::record_struct! { Nested { name, tags, blob, maybe } }

    #[derive(PartialEq, Debug)]
    enum Shape {
        Unit,
        Newtype(u64),
        Tuple(i8, String),
        Struct { x: f64, y: f64 },
    }
    crate::record_enum! { Shape {
        0 => Unit,
        1 => Newtype(v),
        2 => Tuple(a, b),
        3 => Struct { x, y },
    } }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(i128::MIN);
        roundtrip(u128::MAX);
        roundtrip(3.5f32);
        roundtrip(-0.25f64);
        roundtrip('λ');
        roundtrip(String::from("héllo"));
        roundtrip(Option::<u32>::None);
        roundtrip(Some(9u32));
        roundtrip(());
        roundtrip(usize::MAX);
        roundtrip([0xabu8; 17]);
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u8);
        map.insert("b".to_string(), 2u8);
        roundtrip(map);
        roundtrip((1u8, "two".to_string(), 3.0f64));
    }

    #[test]
    fn nested_struct_roundtrip() {
        roundtrip(Nested {
            name: "outer".into(),
            tags: vec![7, 8],
            blob: vec![0, 255, 1],
            maybe: Some(Box::new(Nested {
                name: "inner".into(),
                tags: vec![],
                blob: vec![],
                maybe: None,
            })),
        });
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Shape::Unit);
        roundtrip(Shape::Newtype(42));
        roundtrip(Shape::Tuple(-3, "t".into()));
        roundtrip(Shape::Struct { x: 1.0, y: -2.0 });
    }

    #[test]
    fn kdf_policy_roundtrip_and_wire_format() {
        roundtrip(KdfPolicy::Cpu { iterations: 1 });
        roundtrip(KdfPolicy::PAPER);
        for (_, rung) in KdfPolicy::ladder() {
            roundtrip(rung);
        }
        // Pinned wire form: variant index, then fields little-endian.
        assert_eq!(
            to_bytes(&KdfPolicy::Cpu { iterations: 7 }).unwrap(),
            vec![0, 7, 0, 0, 0]
        );
        assert_eq!(
            to_bytes(&KdfPolicy::MemoryHard {
                log_n: 15,
                r: 8,
                p: 2
            })
            .unwrap(),
            vec![1, 15, 8, 0, 0, 0, 2, 0, 0, 0]
        );
    }

    #[test]
    fn enum_wire_index_is_explicit() {
        // The macro's explicit indices are the wire format.
        assert_eq!(to_bytes(&Shape::Unit).unwrap(), vec![0]);
        assert_eq!(to_bytes(&Shape::Newtype(1)).unwrap()[0], 1);
        let r: Result<Shape, _> = from_bytes(&[9]);
        assert_eq!(r, Err(CodecError::InvalidVariant(9)));
    }

    #[test]
    fn varint_boundaries() {
        for v in [0usize, 127, 128, 16383, 16384, 1 << 20] {
            roundtrip(vec![0u8; v % 1000]); // length prefix exercises varint
            roundtrip(v as u64);
        }
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = to_bytes(&String::from("hello")).unwrap();
        for cut in 0..bytes.len() {
            let r: Result<String, _> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u8).unwrap();
        bytes.push(0);
        let r: Result<u8, _> = from_bytes(&bytes);
        assert_eq!(r, Err(CodecError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn invalid_bool_rejected() {
        let r: Result<bool, _> = from_bytes(&[2]);
        assert_eq!(r, Err(CodecError::InvalidBool(2)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // Length 2, bytes [0xff, 0xff] — invalid UTF-8.
        let r: Result<String, _> = from_bytes(&[2, 0xff, 0xff]);
        assert_eq!(r, Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Declares 2^62 elements with 1 byte of payload: must fail fast,
        // not attempt allocation.
        let mut bytes = Vec::new();
        write_varint(1 << 62, &mut bytes);
        bytes.push(0);
        let r: Result<Vec<u8>, _> = from_bytes(&bytes);
        assert!(matches!(r, Err(CodecError::LengthOverflow { .. })));
    }

    #[test]
    fn encoding_is_compact() {
        // A struct of small values stays small: no field names stored.
        let bytes = to_bytes(&(1u8, 2u8, 3u8)).unwrap();
        assert_eq!(bytes.len(), 3);
        let bytes = to_bytes(&String::from("abc")).unwrap();
        assert_eq!(bytes.len(), 4); // 1 length byte + 3 payload
    }

    #[test]
    fn fixed_arrays_have_no_length_prefix() {
        assert_eq!(to_bytes(&[7u8; 32]).unwrap().len(), 32);
    }

    #[test]
    fn deterministic_encoding() {
        let v = Shape::Struct { x: 0.5, y: 0.5 };
        assert_eq!(to_bytes(&v).unwrap(), to_bytes(&v).unwrap());
    }
}
