//! A compact, non-self-describing binary serde format ("abin").
//!
//! This is the wire/disk format used by every persisted row and every
//! simulated network payload in the workspace. Encoding rules:
//!
//! * integers: fixed-width little-endian; `usize`/collection lengths as
//!   LEB128 varints;
//! * `bool`: one byte, `0` or `1`;
//! * `str`/bytes: varint length followed by the raw bytes;
//! * `Option`: one tag byte then the value if present;
//! * structs/tuples: fields in declaration order, no field names;
//! * enums: varint variant index then the payload.
//!
//! The format is not self-describing, so decoding requires the same type
//! that encoded the value — exactly the property a typed table store needs,
//! and it keeps rows small.
//!
//! ```
//! use serde::{Deserialize, Serialize};
//!
//! #[derive(Serialize, Deserialize, PartialEq, Debug)]
//! struct Row(String, u32);
//!
//! # fn main() -> Result<(), amnesia_store::codec::CodecError> {
//! let bytes = amnesia_store::codec::to_bytes(&Row("x".into(), 7))?;
//! let row: Row = amnesia_store::codec::from_bytes(&bytes)?;
//! assert_eq!(row, Row("x".into(), 7));
//! # Ok(())
//! # }
//! ```

use serde::de::{self, DeserializeOwned, IntoDeserializer, Visitor};
use serde::ser::{self, Serialize};
use std::error::Error;
use std::fmt;

/// Errors produced while encoding or decoding the binary format.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// Decoding finished but input bytes remained.
    TrailingBytes {
        /// Number of unread bytes.
        remaining: usize,
    },
    /// A boolean byte was neither 0 nor 1.
    InvalidBool(u8),
    /// A char code point was invalid.
    InvalidChar(u32),
    /// String bytes were not valid UTF-8.
    InvalidUtf8,
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// The serializer was given a sequence of unknown length.
    LengthRequired,
    /// A length prefix was implausibly large for the remaining input.
    LengthOverflow {
        /// The declared length.
        declared: u64,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Error raised by a `Serialize`/`Deserialize` implementation.
    Message(String),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
            CodecError::InvalidBool(b) => write!(f, "invalid bool byte {b:#04x}"),
            CodecError::InvalidChar(c) => write!(f, "invalid char code point {c:#x}"),
            CodecError::InvalidUtf8 => write!(f, "string bytes are not valid UTF-8"),
            CodecError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            CodecError::LengthRequired => {
                write!(f, "sequences of unknown length are unsupported")
            }
            CodecError::LengthOverflow {
                declared,
                remaining,
            } => write!(
                f,
                "declared length {declared} exceeds remaining input {remaining}"
            ),
            CodecError::Message(m) => f.write_str(m),
        }
    }
}

impl Error for CodecError {}

impl ser::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

impl de::Error for CodecError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        CodecError::Message(msg.to_string())
    }
}

/// Serializes `value` into the compact binary format.
///
/// # Errors
///
/// Returns [`CodecError::LengthRequired`] for iterators of unknown length
/// or any error raised by the value's `Serialize` implementation.
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, CodecError> {
    let mut enc = Encoder { out: Vec::new() };
    value.serialize(&mut enc)?;
    Ok(enc.out)
}

/// Deserializes a value previously produced by [`to_bytes`].
///
/// # Errors
///
/// Fails on malformed input, type mismatches, or trailing bytes.
pub fn from_bytes<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, CodecError> {
    let mut dec = Decoder { input: bytes };
    let value = T::deserialize(&mut dec)?;
    if !dec.input.is_empty() {
        return Err(CodecError::TrailingBytes {
            remaining: dec.input.len(),
        });
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

struct Encoder {
    out: Vec<u8>,
}

impl Encoder {
    fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.out.push(byte);
                return;
            }
            self.out.push(byte | 0x80);
        }
    }
}

impl ser::Serializer for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    type SerializeSeq = Self;
    type SerializeTuple = Self;
    type SerializeTupleStruct = Self;
    type SerializeTupleVariant = Self;
    type SerializeMap = Self;
    type SerializeStruct = Self;
    type SerializeStructVariant = Self;

    fn serialize_bool(self, v: bool) -> Result<(), CodecError> {
        self.out.push(v as u8);
        Ok(())
    }

    fn serialize_i8(self, v: i8) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i16(self, v: i16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i32(self, v: i32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i64(self, v: i64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_i128(self, v: i128) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u8(self, v: u8) -> Result<(), CodecError> {
        self.out.push(v);
        Ok(())
    }
    fn serialize_u16(self, v: u16) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u32(self, v: u32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u64(self, v: u64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_u128(self, v: u128) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f32(self, v: f32) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_f64(self, v: f64) -> Result<(), CodecError> {
        self.out.extend_from_slice(&v.to_le_bytes());
        Ok(())
    }
    fn serialize_char(self, v: char) -> Result<(), CodecError> {
        self.out.extend_from_slice(&(v as u32).to_le_bytes());
        Ok(())
    }

    fn serialize_str(self, v: &str) -> Result<(), CodecError> {
        self.put_varint(v.len() as u64);
        self.out.extend_from_slice(v.as_bytes());
        Ok(())
    }

    fn serialize_bytes(self, v: &[u8]) -> Result<(), CodecError> {
        self.put_varint(v.len() as u64);
        self.out.extend_from_slice(v);
        Ok(())
    }

    fn serialize_none(self) -> Result<(), CodecError> {
        self.out.push(0);
        Ok(())
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<(), CodecError> {
        self.out.push(1);
        value.serialize(self)
    }

    fn serialize_unit(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_struct(self, _name: &'static str) -> Result<(), CodecError> {
        Ok(())
    }

    fn serialize_unit_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
    ) -> Result<(), CodecError> {
        self.put_varint(variant_index as u64);
        Ok(())
    }

    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(self)
    }

    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        self.put_varint(variant_index as u64);
        value.serialize(self)
    }

    fn serialize_seq(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::LengthRequired)?;
        self.put_varint(len as u64);
        Ok(self)
    }

    fn serialize_tuple(self, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.put_varint(variant_index as u64);
        Ok(self)
    }

    fn serialize_map(self, len: Option<usize>) -> Result<Self, CodecError> {
        let len = len.ok_or(CodecError::LengthRequired)?;
        self.put_varint(len as u64);
        Ok(self)
    }

    fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<Self, CodecError> {
        Ok(self)
    }

    fn serialize_struct_variant(
        self,
        _name: &'static str,
        variant_index: u32,
        _variant: &'static str,
        _len: usize,
    ) -> Result<Self, CodecError> {
        self.put_varint(variant_index as u64);
        Ok(self)
    }
}

impl ser::SerializeSeq for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTuple for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeTupleVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeMap for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), CodecError> {
        key.serialize(&mut **self)
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStruct for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

impl ser::SerializeStructVariant for &mut Encoder {
    type Ok = ();
    type Error = CodecError;
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        _key: &'static str,
        value: &T,
    ) -> Result<(), CodecError> {
        value.serialize(&mut **self)
    }
    fn end(self) -> Result<(), CodecError> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

struct Decoder<'de> {
    input: &'de [u8],
}

impl<'de> Decoder<'de> {
    fn take(&mut self, n: usize) -> Result<&'de [u8], CodecError> {
        if self.input.len() < n {
            return Err(CodecError::UnexpectedEof);
        }
        let (head, tail) = self.input.split_at(n);
        self.input = tail;
        Ok(head)
    }

    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        Ok(self.take(N)?.try_into().expect("exact length"))
    }

    fn get_varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.take(1)?[0];
            if shift >= 64 {
                return Err(CodecError::VarintOverflow);
            }
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn get_len(&mut self) -> Result<usize, CodecError> {
        let declared = self.get_varint()?;
        if declared > self.input.len() as u64 {
            return Err(CodecError::LengthOverflow {
                declared,
                remaining: self.input.len(),
            });
        }
        Ok(declared as usize)
    }
}

macro_rules! de_fixed {
    ($method:ident, $visit:ident, $ty:ty) => {
        fn $method<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
            let arr = self.take_array::<{ std::mem::size_of::<$ty>() }>()?;
            visitor.$visit(<$ty>::from_le_bytes(arr))
        }
    };
}

impl<'de> de::Deserializer<'de> for &mut Decoder<'de> {
    type Error = CodecError;

    fn deserialize_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Message(
            "abin is not self-describing; deserialize_any is unsupported".into(),
        ))
    }

    fn deserialize_bool<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_bool(false),
            1 => visitor.visit_bool(true),
            b => Err(CodecError::InvalidBool(b)),
        }
    }

    de_fixed!(deserialize_i8, visit_i8, i8);
    de_fixed!(deserialize_i16, visit_i16, i16);
    de_fixed!(deserialize_i32, visit_i32, i32);
    de_fixed!(deserialize_i64, visit_i64, i64);
    de_fixed!(deserialize_i128, visit_i128, i128);
    de_fixed!(deserialize_u16, visit_u16, u16);
    de_fixed!(deserialize_u32, visit_u32, u32);
    de_fixed!(deserialize_u64, visit_u64, u64);
    de_fixed!(deserialize_u128, visit_u128, u128);
    de_fixed!(deserialize_f32, visit_f32, f32);
    de_fixed!(deserialize_f64, visit_f64, f64);

    fn deserialize_u8<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_u8(self.take(1)?[0])
    }

    fn deserialize_char<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let code = u32::from_le_bytes(self.take_array::<4>()?);
        let c = char::from_u32(code).ok_or(CodecError::InvalidChar(code))?;
        visitor.visit_char(c)
    }

    fn deserialize_str<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        let s = std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)?;
        visitor.visit_borrowed_str(s)
    }

    fn deserialize_string<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_str(visitor)
    }

    fn deserialize_bytes<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_borrowed_bytes(self.take(len)?)
    }

    fn deserialize_byte_buf<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        self.deserialize_bytes(visitor)
    }

    fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        match self.take(1)?[0] {
            0 => visitor.visit_none(),
            1 => visitor.visit_some(self),
            b => Err(CodecError::InvalidBool(b)),
        }
    }

    fn deserialize_unit<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_unit_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_unit()
    }

    fn deserialize_newtype_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_newtype_struct(self)
    }

    fn deserialize_seq<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_seq(CountedAccess {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_tuple<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_seq(CountedAccess {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_tuple_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(len, visitor)
    }

    fn deserialize_map<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, CodecError> {
        let len = self.get_len()?;
        visitor.visit_map(CountedAccess {
            decoder: self,
            remaining: len,
        })
    }

    fn deserialize_struct<V: Visitor<'de>>(
        self,
        _name: &'static str,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        self.deserialize_tuple(fields.len(), visitor)
    }

    fn deserialize_enum<V: Visitor<'de>>(
        self,
        _name: &'static str,
        _variants: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        visitor.visit_enum(EnumAccess { decoder: self })
    }

    fn deserialize_identifier<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Message(
            "abin does not store identifiers".into(),
        ))
    }

    fn deserialize_ignored_any<V: Visitor<'de>>(self, _visitor: V) -> Result<V::Value, CodecError> {
        Err(CodecError::Message(
            "abin cannot skip unknown values".into(),
        ))
    }

    fn is_human_readable(&self) -> bool {
        false
    }
}

struct CountedAccess<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
    remaining: usize,
}

impl<'a, 'de> de::SeqAccess<'de> for CountedAccess<'a, 'de> {
    type Error = CodecError;

    fn next_element_seed<T: de::DeserializeSeed<'de>>(
        &mut self,
        seed: T,
    ) -> Result<Option<T::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.decoder).map(Some)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

impl<'a, 'de> de::MapAccess<'de> for CountedAccess<'a, 'de> {
    type Error = CodecError;

    fn next_key_seed<K: de::DeserializeSeed<'de>>(
        &mut self,
        seed: K,
    ) -> Result<Option<K::Value>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        seed.deserialize(&mut *self.decoder).map(Some)
    }

    fn next_value_seed<V: de::DeserializeSeed<'de>>(
        &mut self,
        seed: V,
    ) -> Result<V::Value, CodecError> {
        seed.deserialize(&mut *self.decoder)
    }

    fn size_hint(&self) -> Option<usize> {
        Some(self.remaining)
    }
}

struct EnumAccess<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::EnumAccess<'de> for EnumAccess<'a, 'de> {
    type Error = CodecError;
    type Variant = VariantAccess<'a, 'de>;

    fn variant_seed<V: de::DeserializeSeed<'de>>(
        self,
        seed: V,
    ) -> Result<(V::Value, Self::Variant), CodecError> {
        let index = self.decoder.get_varint()?;
        let index = u32::try_from(index).map_err(|_| CodecError::VarintOverflow)?;
        let value = seed.deserialize(index.into_deserializer())?;
        Ok((
            value,
            VariantAccess {
                decoder: self.decoder,
            },
        ))
    }
}

struct VariantAccess<'a, 'de> {
    decoder: &'a mut Decoder<'de>,
}

impl<'a, 'de> de::VariantAccess<'de> for VariantAccess<'a, 'de> {
    type Error = CodecError;

    fn unit_variant(self) -> Result<(), CodecError> {
        Ok(())
    }

    fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
        self,
        seed: T,
    ) -> Result<T::Value, CodecError> {
        seed.deserialize(self.decoder)
    }

    fn tuple_variant<V: Visitor<'de>>(
        self,
        len: usize,
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.decoder, len, visitor)
    }

    fn struct_variant<V: Visitor<'de>>(
        self,
        fields: &'static [&'static str],
        visitor: V,
    ) -> Result<V::Value, CodecError> {
        de::Deserializer::deserialize_tuple(self.decoder, fields.len(), visitor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};
    use std::collections::BTreeMap;

    fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + fmt::Debug>(value: T) {
        let bytes = to_bytes(&value).unwrap();
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    struct Nested {
        name: String,
        tags: Vec<u32>,
        blob: Vec<u8>,
        maybe: Option<Box<Nested>>,
    }

    #[derive(Serialize, Deserialize, PartialEq, Debug)]
    enum Shape {
        Unit,
        Newtype(u64),
        Tuple(i8, String),
        Struct { x: f64, y: f64 },
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(true);
        roundtrip(false);
        roundtrip(0u8);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(i128::MIN);
        roundtrip(u128::MAX);
        roundtrip(3.5f32);
        roundtrip(-0.25f64);
        roundtrip('λ');
        roundtrip(String::from("héllo"));
        roundtrip(Option::<u32>::None);
        roundtrip(Some(9u32));
        roundtrip(());
    }

    #[test]
    fn collections_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<String>::new());
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u8);
        map.insert("b".to_string(), 2u8);
        roundtrip(map);
        roundtrip((1u8, "two".to_string(), 3.0f64));
    }

    #[test]
    fn nested_struct_roundtrip() {
        roundtrip(Nested {
            name: "outer".into(),
            tags: vec![7, 8],
            blob: vec![0, 255, 1],
            maybe: Some(Box::new(Nested {
                name: "inner".into(),
                tags: vec![],
                blob: vec![],
                maybe: None,
            })),
        });
    }

    #[test]
    fn enums_roundtrip() {
        roundtrip(Shape::Unit);
        roundtrip(Shape::Newtype(42));
        roundtrip(Shape::Tuple(-3, "t".into()));
        roundtrip(Shape::Struct { x: 1.0, y: -2.0 });
    }

    #[test]
    fn varint_boundaries() {
        for v in [0usize, 127, 128, 16383, 16384, 1 << 20] {
            roundtrip(vec![0u8; v % 1000]); // length prefix exercises varint
            roundtrip(v as u64);
        }
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let bytes = to_bytes(&String::from("hello")).unwrap();
        for cut in 0..bytes.len() {
            let r: Result<String, _> = from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_bytes(&7u8).unwrap();
        bytes.push(0);
        let r: Result<u8, _> = from_bytes(&bytes);
        assert_eq!(r, Err(CodecError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn invalid_bool_rejected() {
        let r: Result<bool, _> = from_bytes(&[2]);
        assert_eq!(r, Err(CodecError::InvalidBool(2)));
    }

    #[test]
    fn invalid_utf8_rejected() {
        // Length 2, bytes [0xff, 0xff] — invalid UTF-8.
        let r: Result<String, _> = from_bytes(&[2, 0xff, 0xff]);
        assert_eq!(r, Err(CodecError::InvalidUtf8));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Declares 2^62 elements with 1 byte of payload: must fail fast,
        // not attempt allocation.
        let mut bytes = Vec::new();
        let mut v: u64 = 1 << 62;
        loop {
            let b = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                bytes.push(b);
                break;
            }
            bytes.push(b | 0x80);
        }
        bytes.push(0);
        let r: Result<Vec<u8>, _> = from_bytes(&bytes);
        assert!(matches!(r, Err(CodecError::LengthOverflow { .. })));
    }

    #[test]
    fn encoding_is_compact() {
        // A struct of small values stays small: no field names stored.
        let bytes = to_bytes(&(1u8, 2u8, 3u8)).unwrap();
        assert_eq!(bytes.len(), 3);
        let bytes = to_bytes(&String::from("abc")).unwrap();
        assert_eq!(bytes.len(), 4); // 1 length byte + 3 payload
    }

    #[test]
    fn deterministic_encoding() {
        let v = Shape::Struct { x: 0.5, y: 0.5 };
        assert_eq!(to_bytes(&v).unwrap(), to_bytes(&v).unwrap());
    }
}
