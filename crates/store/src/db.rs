//! The database: a set of named tables with checksummed snapshot
//! persistence and an optional durable write path (WAL + group commit).

use crate::codec::{self, Record};
use crate::error::StoreError;
use crate::table::{RawTable, TypedTable};
use crate::wal::{self, DiskWalFile, DurabilityConfig, Lsn, Wal, WalStats};
use amnesia_crypto::{ct_eq, sha256};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, RwLock};

/// Snapshot file magic: identifies the format and major version.
const MAGIC: &[u8; 8] = b"ABINDB1\0";

/// Durable-directory snapshot magic: payload carries the compaction-cut
/// LSN before the table dump, so recovery knows where log replay starts.
const MAGIC_DURABLE: &[u8; 8] = b"ABINDB2\0";

/// Name of the snapshot file inside a durable directory.
const SNAPSHOT_FILE: &str = "snapshot.adb";

/// On-disk shape of one table: name plus raw `(key, value)` rows.
type TableDump = (String, Vec<(Vec<u8>, Vec<u8>)>);

/// The durable half of a [`Database`]: the directory, the WAL, and the
/// compaction latch.
struct DurableEngine {
    dir: PathBuf,
    wal: Arc<Wal>,
    /// Serializes compactions; `compact_if_needed` try-locks so writers
    /// never stall behind one already in flight.
    compacting: Mutex<()>,
    compact_log_bytes: Option<u64>,
}

/// A database of named tables — the reproduction's SQLite stand-in.
///
/// Create one [`in_memory`](Database::in_memory), hand out
/// [`TypedTable`] handles, and optionally persist with
/// [`save_to`](Database::save_to) / reload with [`open`](Database::open).
/// Snapshots are atomic (temp file + rename + parent-directory fsync) and
/// integrity-checked with a SHA-256 trailer.
///
/// For a write path that is O(delta) instead of O(database), open the
/// database [*durably*](Database::open_durable): every mutation is then
/// appended to a write-ahead log and group-committed before the mutating
/// call returns, and [`compact`](Database::compact) folds the log back into
/// a snapshot. See the [`wal`](crate::wal) module for the format and
/// protocol.
///
/// ```
/// use amnesia_store::Database;
///
/// # fn main() -> Result<(), amnesia_store::StoreError> {
/// let dir = std::env::temp_dir().join("amnesia-doc-db");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("demo.adb");
///
/// let db = Database::in_memory();
/// db.table::<String, u32>("counts").insert(&"hits".into(), &3)?;
/// db.save_to(&path)?;
///
/// let reloaded = Database::open(&path)?;
/// assert_eq!(reloaded.table::<String, u32>("counts").get(&"hits".into())?, Some(3));
/// # std::fs::remove_file(&path)?;
/// # Ok(())
/// # }
/// ```
pub struct Database {
    tables: RwLock<BTreeMap<String, RawTable>>,
    durable: Option<Arc<DurableEngine>>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tables = self.read_tables();
        f.debug_struct("Database")
            .field("tables", &tables.keys().collect::<Vec<_>>())
            .field("durable", &self.durable.is_some())
            .finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl Database {
    /// Creates an empty in-memory database.
    pub fn in_memory() -> Self {
        Database {
            tables: RwLock::new(BTreeMap::new()),
            durable: None,
        }
    }

    /// Opens (or creates) a durable database rooted at directory `dir`,
    /// with default [`DurabilityConfig`].
    ///
    /// Recovery loads the snapshot (if any), replays every WAL segment in
    /// LSN order skipping records the snapshot already covers, and
    /// truncates a torn tail at the first bad checksum — never losing a
    /// mutation whose commit was acked.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, [`StoreError::Corrupt`] if the snapshot or a
    /// *sealed* (non-tail) WAL segment fails validation.
    pub fn open_durable(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_durable_with(dir, DurabilityConfig::default())
    }

    /// [`open_durable`](Database::open_durable) with explicit tuning.
    pub fn open_durable_with(
        dir: impl AsRef<Path>,
        config: DurabilityConfig,
    ) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;

        // 1. Snapshot, if one has been compacted.
        let snap_path = dir.join(SNAPSHOT_FILE);
        let (mut tables, snap_lsn) = match fs::read(&snap_path) {
            Ok(bytes) => decode_durable_snapshot(&bytes)?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (BTreeMap::new(), 0),
            Err(e) => return Err(e.into()),
        };

        // 2. Replay the log segments in LSN order.
        let segments = wal::list_segments(&dir)?;
        let mut last_lsn = snap_lsn;
        let mut tail_bytes: u64 = 0;
        for (i, (first_lsn, path)) in segments.iter().enumerate() {
            let is_tail = i + 1 == segments.len();
            let bytes = fs::read(path)?;
            let outcome = wal::scan_segment(&bytes)?;
            if !outcome.clean {
                if is_tail {
                    // Torn tail: cut the file back to its well-formed
                    // prefix. Anything past it was never acked (commit
                    // returns only after fsync), so no durability promise
                    // is broken.
                    let file = fs::OpenOptions::new().write(true).open(path)?;
                    file.set_len(outcome.valid_len)?;
                    file.sync_all()?;
                } else {
                    return Err(StoreError::Corrupt {
                        reason: format!("sealed wal segment {first_lsn} is corrupt mid-stream"),
                    });
                }
            }
            for record in outcome.records {
                if record.lsn > last_lsn {
                    wal::apply_mutation(&mut tables, record.mutation);
                    last_lsn = record.lsn;
                }
            }
            if is_tail {
                tail_bytes = outcome.valid_len;
            }
        }

        // 3. Re-open the tail segment for appends (or start segment 1).
        let file: DiskWalFile = match segments.last() {
            Some((_, path)) => DiskWalFile::open_append(path)?,
            None => DiskWalFile::create(&wal::segment_path(&dir, last_lsn.saturating_add(1)))?,
        };
        let wal = Arc::new(Wal::with_file(Box::new(file), last_lsn, &config));
        wal.seed_segment_bytes(tail_bytes);

        let tables: BTreeMap<String, RawTable> = tables
            .into_iter()
            .map(|(name, rows)| (name, Arc::new(RwLock::new(rows))))
            .collect();
        Ok(Database {
            tables: RwLock::new(tables),
            durable: Some(Arc::new(DurableEngine {
                dir,
                wal,
                compacting: Mutex::new(()),
                compact_log_bytes: config.compact_log_bytes,
            })),
        })
    }

    /// Whether this database runs the durable write path.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// WAL flush counters (None for in-memory databases).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durable.as_ref().map(|e| e.wal.stats())
    }

    /// Read lock on the table registry, explicitly recovering from
    /// poisoning (see [`crate::table::read_lock`] for why this is sound).
    fn read_tables(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, RawTable>> {
        self.tables
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Write lock on the table registry, explicitly recovering from
    /// poisoning.
    fn write_tables(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, RawTable>> {
        self.tables
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns a typed handle onto the named table, creating the table if it
    /// does not exist.
    ///
    /// The caller chooses `K`/`V`; all handles onto one table must use the
    /// same types or decoding will fail at access time.
    pub fn table<K, V>(&self, name: &str) -> TypedTable<K, V>
    where
        K: Record,
        V: Record,
    {
        let wal = self.durable.as_ref().map(|e| Arc::clone(&e.wal));
        // Fast path: the table almost always exists already, so probe under
        // the shared read lock and only upgrade to the write lock on miss.
        if let Some(raw) = self.read_tables().get(name) {
            return TypedTable::new(name.to_string(), Arc::clone(raw), wal);
        }
        let raw = {
            let mut tables = self.write_tables();
            Arc::clone(
                tables
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(RwLock::new(BTreeMap::new()))),
            )
        };
        TypedTable::new(name.to_string(), raw, wal)
    }

    /// Names of all tables (including empty ones).
    pub fn table_names(&self) -> Vec<String> {
        self.read_tables().keys().cloned().collect()
    }

    /// Drops a table and all its rows; returns whether it existed.
    ///
    /// On a durable database the drop is logged and group-committed; a log
    /// failure is sticky in the WAL (subsequent mutations error) but cannot
    /// be reported here.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self.write_tables().remove(name).is_some();
        if existed {
            if let Some(engine) = &self.durable {
                let _ = engine
                    .wal
                    .append_drop_table(name)
                    .and_then(|lsn| engine.wal.commit(lsn));
            }
        }
        existed
    }

    /// Stream-encodes every table into `out` in the snapshot payload
    /// layout, without first cloning rows into an intermediate dump. The
    /// bytes are identical to encoding a `Vec<TableDump>` with the codec.
    fn encode_tables_into(&self, out: &mut Vec<u8>) {
        let tables = self.read_tables();
        codec::write_varint(tables.len() as u64, out);
        for (name, raw) in tables.iter() {
            name.encode(out);
            let rows = crate::table::read_lock(raw);
            codec::write_varint(rows.len() as u64, out);
            for (k, v) in rows.iter() {
                codec::write_varint(k.len() as u64, out);
                out.extend_from_slice(k);
                codec::write_varint(v.len() as u64, out);
                out.extend_from_slice(v);
            }
        }
    }

    /// Serializes every table into the snapshot byte format (magic, payload,
    /// SHA-256 trailer). Public so benchmarks and tools can measure or ship
    /// snapshots without touching the filesystem.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        self.encode_tables_into(&mut out);
        let digest = sha256(&out[MAGIC.len()..]);
        out.extend_from_slice(&digest);
        Ok(out)
    }

    /// Clones every table into an owned `(name, rows)` dump — the
    /// double-buffered shape [`snapshot_bytes`](Database::snapshot_bytes)
    /// used to build internally. Exposed for migration tooling and for the
    /// benchmark that quantifies what stream-encoding saves.
    pub fn export_tables(&self) -> Vec<(String, Vec<(Vec<u8>, Vec<u8>)>)> {
        let tables = self.read_tables();
        let mut dump: Vec<TableDump> = Vec::new();
        for (name, raw) in tables.iter() {
            let rows: Vec<(Vec<u8>, Vec<u8>)> = crate::table::read_lock(raw)
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            dump.push((name.clone(), rows));
        }
        dump
    }

    /// Serializes the durable-directory snapshot: like
    /// [`snapshot_bytes`](Database::snapshot_bytes) but with the compaction
    /// cut `lsn` ahead of the table dump.
    fn durable_snapshot_bytes(&self, lsn: Lsn) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_DURABLE);
        lsn.encode(&mut out);
        self.encode_tables_into(&mut out);
        let digest = sha256(&out[MAGIC_DURABLE.len()..]);
        out.extend_from_slice(&digest);
        out
    }

    /// Parses snapshot bytes produced by [`snapshot_bytes`].
    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        let payload = checked_payload(bytes, MAGIC)?;
        let dump: Vec<TableDump> = codec::from_bytes(payload)?;
        let mut tables = BTreeMap::new();
        for (name, rows) in dump {
            let map: BTreeMap<Vec<u8>, Vec<u8>> = rows.into_iter().collect();
            tables.insert(name, Arc::new(RwLock::new(map)));
        }
        Ok(Database {
            tables: RwLock::new(tables),
            durable: None,
        })
    }

    /// Writes an atomic, checksummed snapshot of the database to `path`.
    ///
    /// The snapshot is first written to `path` + `.tmp`, fsynced, renamed
    /// over `path`, and the parent directory is then fsynced — without that
    /// last step a crash shortly after the rename could lose the directory
    /// entry and with it the whole save.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the filesystem or codec errors from row
    /// encoding.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let bytes = self.snapshot_bytes()?;
        write_atomically(path.as_ref(), &bytes)
    }

    /// Loads a database from a snapshot file written by
    /// [`save_to`](Database::save_to).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] if the file fails its magic or
    /// checksum validation, plus I/O and codec errors.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let bytes = fs::read(path)?;
        Self::from_snapshot_bytes(&bytes)
    }

    /// Blocks until every mutation issued so far is durable; no-op for
    /// in-memory databases.
    ///
    /// # Errors
    ///
    /// Surfaces the WAL's sticky I/O error, if any flush has failed.
    pub fn sync(&self) -> Result<(), StoreError> {
        if let Some(engine) = &self.durable {
            engine.wal.sync_all()?;
        }
        Ok(())
    }

    /// Folds the log into a fresh snapshot and deletes the sealed segments,
    /// bounding both recovery time and disk usage. No-op for in-memory
    /// databases.
    ///
    /// Writers are only paused while the log rotates (one file creation);
    /// the snapshot itself is written under read locks.
    ///
    /// # Errors
    ///
    /// Returns I/O errors; on error the old snapshot and segments are left
    /// in place, so the database stays recoverable.
    pub fn compact(&self) -> Result<(), StoreError> {
        let Some(engine) = &self.durable else {
            return Ok(());
        };
        let guard = engine
            .compacting
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        self.compact_locked(engine, guard)
    }

    /// Runs [`compact`](Database::compact) iff the live log has outgrown
    /// [`DurabilityConfig::compact_log_bytes`] and no compaction is already
    /// in flight. Cheap when there is nothing to do; returns whether a
    /// compaction ran.
    pub fn compact_if_needed(&self) -> Result<bool, StoreError> {
        let Some(engine) = &self.durable else {
            return Ok(false);
        };
        let Some(threshold) = engine.compact_log_bytes else {
            return Ok(false);
        };
        if engine.wal.segment_bytes() < threshold {
            return Ok(false);
        }
        let Ok(guard) = engine.compacting.try_lock() else {
            return Ok(false);
        };
        self.compact_locked(engine, guard)?;
        Ok(true)
    }

    fn compact_locked(
        &self,
        engine: &DurableEngine,
        _guard: std::sync::MutexGuard<'_, ()>,
    ) -> Result<(), StoreError> {
        // 1. Seal the current segment at cut S: everything ≤ S is durable
        //    in sealed segments, everything later lands in the new segment.
        let cut = engine.wal.rotate(&engine.dir)?;
        // 2. Snapshot at S. Every mutation with LSN ≤ S was applied to its
        //    map before the appending thread released the table write lock,
        //    so the read locks below observe all of them. Later mutations
        //    may also be visible — harmless, replay is idempotent.
        let bytes = self.durable_snapshot_bytes(cut);
        write_atomically(&engine.dir.join(SNAPSHOT_FILE), &bytes)?;
        // 3. Drop the sealed segments the snapshot now covers.
        for (first_lsn, path) in wal::list_segments(&engine.dir)? {
            if first_lsn <= cut {
                fs::remove_file(&path)?;
            }
        }
        wal::sync_parent_dir(&engine.dir.join(SNAPSHOT_FILE))?;
        Ok(())
    }
}

/// Validates `magic` + SHA-256 trailer and returns the payload in between.
fn checked_payload<'a>(bytes: &'a [u8], magic: &[u8; 8]) -> Result<&'a [u8], StoreError> {
    if bytes.len() < magic.len() + 32 {
        return Err(StoreError::Corrupt {
            reason: format!("file too short ({} bytes)", bytes.len()),
        });
    }
    let (head, rest) = bytes.split_at(magic.len());
    if head != magic {
        return Err(StoreError::Corrupt {
            reason: "bad magic (not an amnesia-store snapshot)".into(),
        });
    }
    let (payload, checksum) = rest.split_at(rest.len() - 32);
    if !ct_eq(&sha256(payload), checksum) {
        return Err(StoreError::Corrupt {
            reason: "checksum mismatch".into(),
        });
    }
    Ok(payload)
}

/// Parses a durable-directory snapshot into plain maps plus the cut LSN.
fn decode_durable_snapshot(
    bytes: &[u8],
) -> Result<(BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>>, Lsn), StoreError> {
    let payload = checked_payload(bytes, MAGIC_DURABLE)?;
    let (lsn, dump): (Lsn, Vec<TableDump>) = codec::from_bytes(payload)?;
    let mut tables = BTreeMap::new();
    for (name, rows) in dump {
        tables.insert(name, rows.into_iter().collect());
    }
    Ok((tables, lsn))
}

/// Temp-file + fsync + rename + parent-directory fsync. The directory sync
/// is what makes the rename itself survive a crash.
fn write_atomically(path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    wal::sync_parent_dir(path)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("amnesia-store-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.adb", std::process::id()))
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join("amnesia-store-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_and_reload_roundtrip() {
        let db = Database::in_memory();
        let t = db.table::<String, Vec<u8>>("blobs");
        t.insert(&"k".into(), &vec![1, 2, 3]).unwrap();
        db.table::<u32, String>("other")
            .insert(&7, &"seven".into())
            .unwrap();

        let path = temp_path("roundtrip");
        db.save_to(&path).unwrap();
        let reloaded = Database::open(&path).unwrap();
        assert_eq!(
            reloaded
                .table::<String, Vec<u8>>("blobs")
                .get(&"k".into())
                .unwrap(),
            Some(vec![1, 2, 3])
        );
        assert_eq!(reloaded.table_names(), vec!["blobs", "other"]);
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupt_payload_detected() {
        let db = Database::in_memory();
        db.table::<u8, u8>("t").insert(&1, &2).unwrap();
        let path = temp_path("corrupt");
        db.save_to(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let path = temp_path("magic");
        fs::write(
            &path,
            b"NOTADB!!--------------------------------------------",
        )
        .unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncated_file_detected() {
        let path = temp_path("short");
        fs::write(&path, b"AB").unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Database::open("/definitely/not/here.adb").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::in_memory();
        let path = temp_path("empty");
        db.save_to(&path).unwrap();
        let reloaded = Database::open(&path).unwrap();
        assert!(reloaded.table_names().is_empty());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn drop_table_works() {
        let db = Database::in_memory();
        db.table::<u8, u8>("gone").insert(&1, &1).unwrap();
        assert!(db.drop_table("gone"));
        assert!(!db.drop_table("gone"));
        assert!(db.table::<u8, u8>("gone").is_empty());
    }

    #[test]
    fn snapshot_excludes_nothing_and_is_deterministic() {
        let db = Database::in_memory();
        db.table::<u8, u8>("a").insert(&1, &1).unwrap();
        db.table::<u8, u8>("b").insert(&2, &2).unwrap();
        let s1 = db.snapshot_bytes().unwrap();
        let s2 = db.snapshot_bytes().unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn streamed_snapshot_matches_double_buffered_encoding() {
        // The satellite rewrite must be byte-identical to encoding the old
        // `Vec<TableDump>` clone, or existing snapshot files would break.
        let db = Database::in_memory();
        db.table::<String, Vec<u8>>("x")
            .insert(&"k1".into(), &vec![1; 40])
            .unwrap();
        db.table::<u32, String>("y")
            .insert(&42, &"value".into())
            .unwrap();
        db.table::<u8, u8>("empty");

        let dump = db.export_tables();
        let payload_naive = codec::to_bytes(&dump).unwrap();
        let mut payload_streamed = Vec::new();
        db.encode_tables_into(&mut payload_streamed);
        assert_eq!(payload_naive, payload_streamed);
    }

    #[test]
    fn durable_roundtrip_without_compaction() {
        let dir = temp_dir("durable-roundtrip");
        {
            let db = Database::open_durable(&dir).unwrap();
            assert!(db.is_durable());
            let t = db.table::<String, Vec<u8>>("blobs");
            t.insert(&"a".into(), &vec![1]).unwrap();
            t.put(&"a".into(), &vec![2]).unwrap();
            t.insert(&"b".into(), &vec![3]).unwrap();
            t.remove(&"b".into()).unwrap();
        }
        let db = Database::open_durable(&dir).unwrap();
        let t = db.table::<String, Vec<u8>>("blobs");
        assert_eq!(t.get(&"a".into()).unwrap(), Some(vec![2]));
        assert_eq!(t.get(&"b".into()).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_roundtrip_across_compaction() {
        let dir = temp_dir("durable-compact");
        {
            let db = Database::open_durable(&dir).unwrap();
            let t = db.table::<u32, String>("t");
            for i in 0..10u32 {
                t.insert(&i, &format!("v{i}")).unwrap();
            }
            db.compact().unwrap();
            // Post-compaction mutations land in the fresh segment.
            t.put(&3, &"rewritten".into()).unwrap();
            t.remove(&4).unwrap();
            db.table::<u8, u8>("doomed").insert(&1, &1).unwrap();
            db.drop_table("doomed");
        }
        let db = Database::open_durable(&dir).unwrap();
        let t = db.table::<u32, String>("t");
        assert_eq!(t.len(), 9);
        assert_eq!(t.get(&3).unwrap(), Some("rewritten".into()));
        assert_eq!(t.get(&4).unwrap(), None);
        assert!(!db.table_names().contains(&"doomed".to_string()));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_deletes_sealed_segments() {
        let dir = temp_dir("durable-segments");
        let db = Database::open_durable(&dir).unwrap();
        let t = db.table::<u32, u32>("t");
        for i in 0..5u32 {
            t.insert(&i, &i).unwrap();
        }
        db.compact().unwrap();
        let segments = wal::list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1, "sealed segments must be deleted");
        assert!(dir.join(SNAPSHOT_FILE).exists());
        // A second compaction with no new writes must be a no-op that does
        // not stack empty segments.
        db.compact().unwrap();
        assert_eq!(wal::list_segments(&dir).unwrap().len(), 1);
        drop(db);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_concurrent_writers_all_recovered() {
        let dir = temp_dir("durable-concurrent");
        {
            let db = Database::open_durable(&dir).unwrap();
            let t = db.table::<u64, u64>("c");
            std::thread::scope(|s| {
                for worker in 0..4u64 {
                    let t = t.clone();
                    s.spawn(move || {
                        for i in 0..100u64 {
                            t.insert(&(worker * 1000 + i), &i).unwrap();
                        }
                    });
                }
            });
        }
        let db = Database::open_durable(&dir).unwrap();
        assert_eq!(db.table::<u64, u64>("c").len(), 400);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_if_needed_respects_threshold() {
        let dir = temp_dir("durable-threshold");
        let config = DurabilityConfig {
            compact_log_bytes: Some(512),
            ..DurabilityConfig::default()
        };
        let db = Database::open_durable_with(&dir, config).unwrap();
        let t = db.table::<u32, Vec<u8>>("t");
        assert!(!db.compact_if_needed().unwrap());
        for i in 0..20u32 {
            t.insert(&i, &vec![0u8; 64]).unwrap();
        }
        assert!(db.compact_if_needed().unwrap());
        assert!(!db.compact_if_needed().unwrap());
        drop(t);
        drop(db);
        fs::remove_dir_all(&dir).unwrap();
    }
}
