//! The database: a set of named tables with checksummed snapshot
//! persistence.

use crate::codec::{self, Record};
use crate::error::StoreError;
use crate::table::{RawTable, TypedTable};
use amnesia_crypto::{ct_eq, sha256};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, RwLock};

/// Snapshot file magic: identifies the format and major version.
const MAGIC: &[u8; 8] = b"ABINDB1\0";

/// On-disk shape of one table: name plus raw `(key, value)` rows.
type TableDump = (String, Vec<(Vec<u8>, Vec<u8>)>);

/// A database of named tables — the reproduction's SQLite stand-in.
///
/// Create one [`in_memory`](Database::in_memory), hand out
/// [`TypedTable`] handles, and optionally persist with
/// [`save_to`](Database::save_to) / reload with [`open`](Database::open).
/// Snapshots are atomic (temp file + rename) and integrity-checked with a
/// SHA-256 trailer.
///
/// ```
/// use amnesia_store::Database;
///
/// # fn main() -> Result<(), amnesia_store::StoreError> {
/// let dir = std::env::temp_dir().join("amnesia-doc-db");
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("demo.adb");
///
/// let db = Database::in_memory();
/// db.table::<String, u32>("counts").insert(&"hits".into(), &3)?;
/// db.save_to(&path)?;
///
/// let reloaded = Database::open(&path)?;
/// assert_eq!(reloaded.table::<String, u32>("counts").get(&"hits".into())?, Some(3));
/// # std::fs::remove_file(&path)?;
/// # Ok(())
/// # }
/// ```
pub struct Database {
    tables: RwLock<BTreeMap<String, RawTable>>,
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tables = self.read_tables();
        f.debug_struct("Database")
            .field("tables", &tables.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::in_memory()
    }
}

impl Database {
    /// Creates an empty in-memory database.
    pub fn in_memory() -> Self {
        Database {
            tables: RwLock::new(BTreeMap::new()),
        }
    }

    /// Read lock on the table registry, explicitly recovering from
    /// poisoning (see [`crate::table::read_lock`] for why this is sound).
    fn read_tables(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, RawTable>> {
        self.tables
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Write lock on the table registry, explicitly recovering from
    /// poisoning.
    fn write_tables(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, RawTable>> {
        self.tables
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns a typed handle onto the named table, creating the table if it
    /// does not exist.
    ///
    /// The caller chooses `K`/`V`; all handles onto one table must use the
    /// same types or decoding will fail at access time.
    pub fn table<K, V>(&self, name: &str) -> TypedTable<K, V>
    where
        K: Record,
        V: Record,
    {
        let raw = {
            let mut tables = self.write_tables();
            Arc::clone(
                tables
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(RwLock::new(BTreeMap::new()))),
            )
        };
        TypedTable::new(name.to_string(), raw)
    }

    /// Names of all tables (including empty ones).
    pub fn table_names(&self) -> Vec<String> {
        self.read_tables().keys().cloned().collect()
    }

    /// Drops a table and all its rows; returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        self.write_tables().remove(name).is_some()
    }

    /// Serializes every table into the snapshot byte format (magic, payload,
    /// SHA-256 trailer).
    fn to_snapshot_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let tables = self.read_tables();
        let mut dump: Vec<TableDump> = Vec::new();
        for (name, raw) in tables.iter() {
            let rows: Vec<(Vec<u8>, Vec<u8>)> = crate::table::read_lock(raw)
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            dump.push((name.clone(), rows));
        }
        drop(tables);
        let payload = codec::to_bytes(&dump)?;
        let mut out = Vec::with_capacity(MAGIC.len() + payload.len() + 32);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&sha256(&payload));
        Ok(out)
    }

    /// Parses snapshot bytes produced by [`to_snapshot_bytes`].
    fn from_snapshot_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < MAGIC.len() + 32 {
            return Err(StoreError::Corrupt {
                reason: format!("file too short ({} bytes)", bytes.len()),
            });
        }
        let (magic, rest) = bytes.split_at(MAGIC.len());
        if magic != MAGIC {
            return Err(StoreError::Corrupt {
                reason: "bad magic (not an amnesia-store snapshot)".into(),
            });
        }
        let (payload, checksum) = rest.split_at(rest.len() - 32);
        if !ct_eq(&sha256(payload), checksum) {
            return Err(StoreError::Corrupt {
                reason: "checksum mismatch".into(),
            });
        }
        let dump: Vec<TableDump> = codec::from_bytes(payload)?;
        let mut tables = BTreeMap::new();
        for (name, rows) in dump {
            let map: BTreeMap<Vec<u8>, Vec<u8>> = rows.into_iter().collect();
            tables.insert(name, Arc::new(RwLock::new(map)));
        }
        Ok(Database {
            tables: RwLock::new(tables),
        })
    }

    /// Writes an atomic, checksummed snapshot of the database to `path`.
    ///
    /// The snapshot is first written to `path` + `.tmp` and then renamed, so
    /// an interrupted save never corrupts an existing database file.
    ///
    /// # Errors
    ///
    /// Returns I/O errors from the filesystem or codec errors from row
    /// encoding.
    pub fn save_to(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let path = path.as_ref();
        let bytes = self.to_snapshot_bytes()?;
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a database from a snapshot file written by
    /// [`save_to`](Database::save_to).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Corrupt`] if the file fails its magic or
    /// checksum validation, plus I/O and codec errors.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        let bytes = fs::read(path)?;
        Self::from_snapshot_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("amnesia-store-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}.adb", std::process::id()))
    }

    #[test]
    fn save_and_reload_roundtrip() {
        let db = Database::in_memory();
        let t = db.table::<String, Vec<u8>>("blobs");
        t.insert(&"k".into(), &vec![1, 2, 3]).unwrap();
        db.table::<u32, String>("other")
            .insert(&7, &"seven".into())
            .unwrap();

        let path = temp_path("roundtrip");
        db.save_to(&path).unwrap();
        let reloaded = Database::open(&path).unwrap();
        assert_eq!(
            reloaded
                .table::<String, Vec<u8>>("blobs")
                .get(&"k".into())
                .unwrap(),
            Some(vec![1, 2, 3])
        );
        assert_eq!(reloaded.table_names(), vec!["blobs", "other"]);
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn corrupt_payload_detected() {
        let db = Database::in_memory();
        db.table::<u8, u8>("t").insert(&1, &2).unwrap();
        let path = temp_path("corrupt");
        db.save_to(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn bad_magic_detected() {
        let path = temp_path("magic");
        fs::write(
            &path,
            b"NOTADB!!--------------------------------------------",
        )
        .unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn truncated_file_detected() {
        let path = temp_path("short");
        fs::write(&path, b"AB").unwrap();
        let err = Database::open(&path).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }));
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Database::open("/definitely/not/here.adb").unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::in_memory();
        let path = temp_path("empty");
        db.save_to(&path).unwrap();
        let reloaded = Database::open(&path).unwrap();
        assert!(reloaded.table_names().is_empty());
        fs::remove_file(path).unwrap();
    }

    #[test]
    fn drop_table_works() {
        let db = Database::in_memory();
        db.table::<u8, u8>("gone").insert(&1, &1).unwrap();
        assert!(db.drop_table("gone"));
        assert!(!db.drop_table("gone"));
        assert!(db.table::<u8, u8>("gone").is_empty());
    }

    #[test]
    fn snapshot_excludes_nothing_and_is_deterministic() {
        let db = Database::in_memory();
        db.table::<u8, u8>("a").insert(&1, &1).unwrap();
        db.table::<u8, u8>("b").insert(&2, &2).unwrap();
        let s1 = db.to_snapshot_bytes().unwrap();
        let s2 = db.to_snapshot_bytes().unwrap();
        assert_eq!(s1, s2);
    }
}
