//! Error type for the store.

use crate::codec::CodecError;
use std::error::Error;
use std::fmt;

/// Errors produced by database and table operations.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A row or key failed to encode/decode.
    Codec(CodecError),
    /// Filesystem I/O failed.
    Io(std::io::Error),
    /// `insert` was called with a key that already exists.
    DuplicateKey {
        /// Table the insert targeted.
        table: String,
    },
    /// A snapshot file was malformed or failed its integrity check.
    Corrupt {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Codec(e) => write!(f, "codec error: {e}"),
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::DuplicateKey { table } => {
                write!(f, "duplicate key in table {table:?}")
            }
            StoreError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Codec(e) => Some(e),
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = StoreError::from(CodecError::UnexpectedEof);
        assert!(e.to_string().contains("codec"));
        assert!(e.source().is_some());

        let e = StoreError::DuplicateKey {
            table: "users".into(),
        };
        assert!(e.to_string().contains("users"));
        assert!(e.source().is_none());
    }
}
