//! Embedded storage substrate for the Amnesia reproduction.
//!
//! The paper's prototype keeps both the server state (`Ks`, hashed
//! verifiers, registration IDs) and the phone state (`Kp`) in SQLite
//! databases. This crate is the Rust stand-in: a small embedded store with
//!
//! * a **compact binary codec** ([`codec`]) built on the in-repo
//!   [`codec::Record`] trait, so any row type can be persisted without
//!   pulling an external serialization crate — types opt in via the
//!   [`record_struct!`], [`record_tuple!`] and [`record_enum!`] macros,
//! * **named typed tables** ([`TypedTable`]) with unique primary keys and
//!   ordered iteration, guarded by `std::sync` locks (lock poisoning is
//!   recovered explicitly) so server request threads can share one
//!   database, and
//! * **checksummed atomic snapshots** ([`Database::save_to`] /
//!   [`Database::open`]) — the file carries a magic header, format version
//!   and SHA-256 integrity checksum, and is written via a temp-file rename
//!   (parent directory fsynced) so a crash never leaves a torn database,
//!   and
//! * a **durable write path** ([`Database::open_durable`]) — an
//!   append-only, checksummed write-ahead log ([`wal`]) with group commit,
//!   making each mutation O(delta) instead of O(database), plus
//!   snapshot-and-truncate compaction ([`Database::compact`]) and
//!   crash recovery that tolerates a torn log tail.
//!
//! # Example
//!
//! ```
//! use amnesia_store::{record_struct, Database, TypedTable};
//!
//! #[derive(PartialEq, Debug)]
//! struct UserRow {
//!     name: String,
//!     logins: u32,
//! }
//! record_struct! { UserRow { name, logins } }
//!
//! # fn main() -> Result<(), amnesia_store::StoreError> {
//! let db = Database::in_memory();
//! let users: TypedTable<String, UserRow> = db.table("users");
//! users.insert(&"alice".to_string(), &UserRow { name: "Alice".into(), logins: 3 })?;
//! assert_eq!(users.get(&"alice".to_string())?.unwrap().logins, 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod db;
mod error;
mod table;
pub mod wal;

pub use db::Database;
pub use error::StoreError;
pub use table::TypedTable;
pub use wal::{DurabilityConfig, Lsn, WalStats};
