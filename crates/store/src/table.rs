//! Typed table handles over the raw byte store.

use crate::codec::{self, Record};
use crate::error::StoreError;
use crate::wal::{Lsn, Wal};
use std::collections::BTreeMap;
use std::fmt;
use std::marker::PhantomData;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub(crate) type RawMap = BTreeMap<Vec<u8>, Vec<u8>>;
pub(crate) type RawTable = Arc<RwLock<RawMap>>;

/// Acquires the read lock, explicitly recovering from poisoning.
///
/// A poisoned lock means some writer panicked mid-update. For this store the
/// map is always left structurally valid (every mutation is a single
/// `BTreeMap` call, which is panic-atomic for the map itself), so recovering
/// the guard is sound; we do it deliberately rather than unwrapping.
pub(crate) fn read_lock(raw: &RwLock<RawMap>) -> RwLockReadGuard<'_, RawMap> {
    raw.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Acquires the write lock, explicitly recovering from poisoning (see
/// [`read_lock`]).
pub(crate) fn write_lock(raw: &RwLock<RawMap>) -> RwLockWriteGuard<'_, RawMap> {
    raw.write().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A typed view over one named table of a [`Database`](crate::Database).
///
/// Keys and rows are any [`Record`] types; the table enforces key uniqueness
/// and orders iteration by the encoded key bytes. Handles are cheap to clone
/// and safe to share across threads (the server's request threads all hold
/// handles onto the same tables).
///
/// ```
/// use amnesia_store::{Database, TypedTable};
///
/// # fn main() -> Result<(), amnesia_store::StoreError> {
/// let db = Database::in_memory();
/// let t: TypedTable<u32, String> = db.table("names");
/// t.insert(&1, &"one".to_string())?;
/// assert!(t.insert(&1, &"uno".to_string()).is_err()); // duplicate key
/// t.put(&1, &"uno".to_string())?; // upsert succeeds
/// assert_eq!(t.get(&1)?, Some("uno".to_string()));
/// # Ok(())
/// # }
/// ```
pub struct TypedTable<K, V> {
    name: String,
    raw: RawTable,
    /// Present when the owning database is durable: every mutation appends
    /// a WAL record *under the table's write lock* (so per-table log order
    /// equals map order) and group-commits after releasing it.
    wal: Option<Arc<Wal>>,
    _marker: PhantomData<fn() -> (K, V)>,
}

impl<K, V> Clone for TypedTable<K, V> {
    fn clone(&self) -> Self {
        TypedTable {
            name: self.name.clone(),
            raw: Arc::clone(&self.raw),
            wal: self.wal.clone(),
            _marker: PhantomData,
        }
    }
}

impl<K, V> fmt::Debug for TypedTable<K, V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypedTable")
            .field("name", &self.name)
            .field("rows", &read_lock(&self.raw).len())
            .finish()
    }
}

impl<K, V> TypedTable<K, V>
where
    K: Record,
    V: Record,
{
    pub(crate) fn new(name: String, raw: RawTable, wal: Option<Arc<Wal>>) -> Self {
        TypedTable {
            name,
            raw,
            wal,
            _marker: PhantomData,
        }
    }

    /// Group-commits `lsn` if this table is WAL-backed. Called after the
    /// write lock is released so the fsync never blocks other writers on
    /// this table.
    fn commit(&self, lsn: Option<Lsn>) -> Result<(), StoreError> {
        match (&self.wal, lsn) {
            (Some(wal), Some(lsn)) => wal.commit(lsn),
            _ => Ok(()),
        }
    }

    /// The table's name within its database.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Inserts a new row.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DuplicateKey`] if the key already exists, or a
    /// codec error if the key/row fails to encode.
    pub fn insert(&self, key: &K, value: &V) -> Result<(), StoreError> {
        let k = codec::to_bytes(key)?;
        let v = codec::to_bytes(value)?;
        let lsn = {
            let mut raw = write_lock(&self.raw);
            if raw.contains_key(&k) {
                return Err(StoreError::DuplicateKey {
                    table: self.name.clone(),
                });
            }
            let lsn = match &self.wal {
                Some(wal) => Some(wal.append_put(&self.name, &k, &v)?),
                None => None,
            };
            raw.insert(k, v);
            lsn
        };
        self.commit(lsn)
    }

    /// Inserts or replaces a row, returning the previous row if any.
    ///
    /// # Errors
    ///
    /// Returns a codec error if encoding or decoding fails.
    pub fn put(&self, key: &K, value: &V) -> Result<Option<V>, StoreError> {
        let k = codec::to_bytes(key)?;
        let v = codec::to_bytes(value)?;
        let (old, lsn) = {
            let mut raw = write_lock(&self.raw);
            let lsn = match &self.wal {
                Some(wal) => Some(wal.append_put(&self.name, &k, &v)?),
                None => None,
            };
            (raw.insert(k, v), lsn)
        };
        self.commit(lsn)?;
        old.map(|bytes| codec::from_bytes(&bytes).map_err(StoreError::from))
            .transpose()
    }

    /// Fetches the row for `key`.
    ///
    /// # Errors
    ///
    /// Returns a codec error if encoding or decoding fails.
    pub fn get(&self, key: &K) -> Result<Option<V>, StoreError> {
        let k = codec::to_bytes(key)?;
        let raw = read_lock(&self.raw);
        raw.get(&k)
            .map(|bytes| codec::from_bytes(bytes).map_err(StoreError::from))
            .transpose()
    }

    /// Removes the row for `key`, returning it if present.
    ///
    /// # Errors
    ///
    /// Returns a codec error if encoding or decoding fails.
    pub fn remove(&self, key: &K) -> Result<Option<V>, StoreError> {
        let k = codec::to_bytes(key)?;
        let (old, lsn) = {
            let mut raw = write_lock(&self.raw);
            let old = raw.remove(&k);
            let lsn = match (&self.wal, old.is_some()) {
                (Some(wal), true) => Some(wal.append_remove(&self.name, &k)?),
                _ => None,
            };
            (old, lsn)
        };
        self.commit(lsn)?;
        old.map(|bytes| codec::from_bytes(&bytes).map_err(StoreError::from))
            .transpose()
    }

    /// Whether a row exists for `key`.
    ///
    /// # Errors
    ///
    /// Returns a codec error if the key fails to encode.
    pub fn contains(&self, key: &K) -> Result<bool, StoreError> {
        let k = codec::to_bytes(key)?;
        Ok(read_lock(&self.raw).contains_key(&k))
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        read_lock(&self.raw).len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        read_lock(&self.raw).is_empty()
    }

    /// Removes every row.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the table is WAL-backed and the log write
    /// fails.
    pub fn clear(&self) -> Result<(), StoreError> {
        let lsn = {
            let mut raw = write_lock(&self.raw);
            let lsn = match &self.wal {
                Some(wal) => Some(wal.append_clear(&self.name)?),
                None => None,
            };
            raw.clear();
            lsn
        };
        self.commit(lsn)
    }

    /// Decodes and returns all rows, ordered by encoded key.
    ///
    /// This takes a consistent snapshot under the read lock; mutations made
    /// after the call are not reflected.
    ///
    /// # Errors
    ///
    /// Returns a codec error if any stored row fails to decode (indicating
    /// the table was written with a different row type).
    pub fn scan(&self) -> Result<Vec<(K, V)>, StoreError> {
        let raw = read_lock(&self.raw);
        raw.iter()
            .map(|(k, v)| {
                Ok((
                    codec::from_bytes(k).map_err(StoreError::from)?,
                    codec::from_bytes(v).map_err(StoreError::from)?,
                ))
            })
            .collect()
    }

    /// Updates the row for `key` in place via `f`, returning whether a row
    /// was present.
    ///
    /// The closure runs under the write lock; keep it short.
    ///
    /// # Errors
    ///
    /// Returns a codec error if encoding or decoding fails.
    pub fn update<F: FnOnce(&mut V)>(&self, key: &K, f: F) -> Result<bool, StoreError> {
        let k = codec::to_bytes(key)?;
        let lsn = {
            let mut raw = write_lock(&self.raw);
            match raw.get(&k) {
                None => return Ok(false),
                Some(bytes) => {
                    let mut value: V = codec::from_bytes(bytes)?;
                    f(&mut value);
                    let encoded = codec::to_bytes(&value)?;
                    let lsn = match &self.wal {
                        Some(wal) => Some(wal.append_put(&self.name, &k, &encoded)?),
                        None => None,
                    };
                    raw.insert(k, encoded);
                    lsn
                }
            }
        };
        self.commit(lsn)?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use crate::Database;

    #[derive(PartialEq, Debug, Clone)]
    struct Row {
        v: u64,
        label: String,
    }
    crate::record_struct! { Row { v, label } }

    fn row(v: u64) -> Row {
        Row {
            v,
            label: format!("row-{v}"),
        }
    }

    #[test]
    fn insert_get_remove_cycle() {
        let db = Database::in_memory();
        let t = db.table::<String, Row>("t");
        assert!(t.is_empty());
        t.insert(&"a".into(), &row(1)).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&"a".into()).unwrap(), Some(row(1)));
        assert_eq!(t.remove(&"a".into()).unwrap(), Some(row(1)));
        assert_eq!(t.get(&"a".into()).unwrap(), None);
        assert_eq!(t.remove(&"a".into()).unwrap(), None);
    }

    #[test]
    fn duplicate_insert_rejected_put_allowed() {
        let db = Database::in_memory();
        let t = db.table::<u32, Row>("t");
        t.insert(&1, &row(1)).unwrap();
        assert!(t.insert(&1, &row(2)).is_err());
        let old = t.put(&1, &row(2)).unwrap();
        assert_eq!(old, Some(row(1)));
        assert_eq!(t.get(&1).unwrap(), Some(row(2)));
    }

    #[test]
    fn scan_is_ordered_and_complete() {
        let db = Database::in_memory();
        let t = db.table::<u32, Row>("t");
        for i in (0u32..10).rev() {
            t.insert(&i, &row(i as u64)).unwrap();
        }
        let all = t.scan().unwrap();
        assert_eq!(all.len(), 10);
        // u32 keys encode little-endian, so byte order == numeric order only
        // within a byte; just assert completeness and decodability here.
        let mut keys: Vec<u32> = all.iter().map(|(k, _)| *k).collect();
        keys.sort_unstable();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn update_in_place() {
        let db = Database::in_memory();
        let t = db.table::<u32, Row>("t");
        t.insert(&5, &row(5)).unwrap();
        let touched = t.update(&5, |r| r.v += 100).unwrap();
        assert!(touched);
        assert_eq!(t.get(&5).unwrap().unwrap().v, 105);
        assert!(!t.update(&6, |r| r.v += 1).unwrap());
    }

    #[test]
    fn handles_share_state() {
        let db = Database::in_memory();
        let t1 = db.table::<u32, Row>("shared");
        let t2 = db.table::<u32, Row>("shared");
        t1.insert(&1, &row(1)).unwrap();
        assert_eq!(t2.get(&1).unwrap(), Some(row(1)));
        let t3 = t1.clone();
        t3.clear().unwrap();
        assert!(t1.is_empty());
    }

    #[test]
    fn concurrent_writers_do_not_lose_rows() {
        let db = Database::in_memory();
        let t = db.table::<u64, Row>("c");
        std::thread::scope(|s| {
            for worker in 0..4u64 {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..250u64 {
                        t.insert(&(worker * 1000 + i), &row(i)).unwrap();
                    }
                });
            }
        });
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn table_usable_after_poisoning_panic() {
        // A reader panicking while holding the lock poisons it; the store
        // recovers explicitly instead of propagating the poison forever.
        let db = std::sync::Arc::new(Database::in_memory());
        let t = db.table::<u32, Row>("p");
        t.insert(&1, &row(1)).unwrap();
        let t2 = t.clone();
        let _ = std::thread::spawn(move || {
            // Panic inside `update` — the write guard is held, so this
            // poisons the lock.
            let _ = t2.update(&1, |_| panic!("poison the lock"));
        })
        .join();
        // Still fully usable afterwards.
        assert_eq!(t.get(&1).unwrap(), Some(row(1)));
        t.put(&2, &row(2)).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn debug_shows_name_and_rows() {
        let db = Database::in_memory();
        let t = db.table::<u32, Row>("dbg");
        t.insert(&1, &row(1)).unwrap();
        let s = format!("{t:?}");
        assert!(s.contains("dbg"));
        assert!(s.contains('1'));
    }
}
