//! Append-only write-ahead log with group commit.
//!
//! The snapshot path ([`Database::save_to`](crate::Database::save_to))
//! re-serializes and fsyncs the whole database on every call — O(total DB
//! size) per write. The WAL makes the write path O(delta): each mutation is
//! appended to a log as one checksummed, length-prefixed frame, and a
//! **group-commit** layer coalesces concurrent writers into a single fsync.
//!
//! # Frame format
//!
//! A log segment starts with the 8-byte magic [`WAL_MAGIC`] followed by a
//! sequence of frames:
//!
//! ```text
//! ┌──────────┬─────────────┬───────────────────┬──────────────────────┐
//! │ LSN (u64 │ payload len │ payload: encoded  │ SHA-256 over         │
//! │ LE, 8 B) │ (u32 LE, 4B)│ Mutation (codec)  │ lsn‖len‖payload (32B)│
//! └──────────┴─────────────┴───────────────────┴──────────────────────┘
//! ```
//!
//! LSNs are assigned densely and monotonically; [`scan_segment`] rejects any
//! frame that breaks the sequence, fails its checksum, or is truncated, and
//! reports the byte length of the well-formed prefix so recovery can cut a
//! torn tail without ever losing an *acked* (committed) record.
//!
//! # Group commit
//!
//! [`Wal::append_put`] and friends stamp the mutation with the next LSN and
//! buffer the encoded frame in memory — that LSN is the writer's *commit
//! ticket*. [`Wal::commit`] then parks the writer until `durable_lsn` covers
//! its ticket: the first writer to arrive becomes the *flush leader*,
//! optionally lingers for [`DurabilityConfig::group_window`] so more writers
//! can join the batch, and writes + fsyncs the whole batch with the state
//! lock released (appenders keep making progress during the fsync). Everyone
//! else waits on the condvar and is woken when the leader advances
//! `durable_lsn`.
//!
//! I/O failures are sticky: once a flush fails, every in-flight and future
//! commit reports the error rather than silently running non-durably.

use crate::codec;
use crate::error::StoreError;
use amnesia_crypto::{ct_eq, sha256_concat};
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Log sequence number. LSN 0 means "nothing logged"; the first mutation
/// gets LSN 1. LSNs are dense: every append increments by exactly one.
pub type Lsn = u64;

/// Magic bytes opening every WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"AWALOG1\0";

/// Bytes of frame header (LSN + payload length) preceding the payload.
pub const FRAME_HEADER_LEN: usize = 12;

/// Bytes of SHA-256 trailer following the payload.
pub const FRAME_TRAILER_LEN: usize = 32;

/// One logged mutation, in the order it was applied to the in-memory maps.
///
/// Replaying mutations in LSN order over a snapshot reproduces the database
/// exactly: `Put`/`Remove` are keyed upserts/deletes, so re-applying a
/// record that the snapshot already folded in is harmless (idempotent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mutation {
    /// Insert or replace the row `key` of `table` with `value`.
    Put {
        /// Target table name.
        table: String,
        /// Encoded key bytes.
        key: Vec<u8>,
        /// Encoded row bytes.
        value: Vec<u8>,
    },
    /// Remove the row `key` of `table` (no-op if absent).
    Remove {
        /// Target table name.
        table: String,
        /// Encoded key bytes.
        key: Vec<u8>,
    },
    /// Drop `table` and all its rows.
    DropTable {
        /// Target table name.
        table: String,
    },
    /// Remove every row of `table`, keeping the (empty) table.
    ClearTable {
        /// Target table name.
        table: String,
    },
}

crate::record_enum! {
    Mutation {
        0 => Put { table, key, value },
        1 => Remove { table, key },
        2 => DropTable { table },
        3 => ClearTable { table },
    }
}

/// Tuning knobs for the durable write path.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// How long the flush leader lingers (with the lock released) so more
    /// writers can join its batch before the fsync. Zero flushes
    /// immediately; coalescing then comes only from writers that queued
    /// during the previous flush.
    pub group_window: Duration,
    /// Flush as soon as this many records are pending, without lingering.
    pub max_batch_records: usize,
    /// Whether the leader fsyncs after writing. Disabling this trades crash
    /// durability for throughput (page-cache writes only) — used by the
    /// benchmarks to build long logs quickly, never by the server.
    pub fsync: bool,
    /// Auto-compaction threshold for
    /// [`Database::compact_if_needed`](crate::Database::compact_if_needed):
    /// compact once the live log exceeds this many bytes. `None` disables
    /// automatic compaction.
    pub compact_log_bytes: Option<u64>,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            group_window: Duration::from_micros(500),
            max_batch_records: 1024,
            fsync: true,
            compact_log_bytes: Some(64 * 1024 * 1024),
        }
    }
}

/// Sink for WAL bytes. The production implementation is [`DiskWalFile`];
/// tests inject faulting implementations to prove that a commit is only
/// acked once its bytes have reached `sync`.
pub trait WalFile: Send {
    /// Appends raw bytes to the log tail.
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()>;
    /// Makes every appended byte durable.
    fn sync(&mut self) -> std::io::Result<()>;
}

/// [`WalFile`] backed by a real file, the segment's parent directory
/// fsynced on creation so the file itself survives a crash.
pub struct DiskWalFile {
    file: fs::File,
}

impl DiskWalFile {
    /// Creates a fresh segment at `path`: writes the magic header, fsyncs
    /// the file, then fsyncs the parent directory so the creation itself is
    /// durable.
    pub fn create(path: &Path) -> std::io::Result<DiskWalFile> {
        let mut file = fs::OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_all()?;
        sync_parent_dir(path)?;
        Ok(DiskWalFile { file })
    }

    /// Opens an existing segment for appending (recovery reopens the tail
    /// segment after validating it).
    pub fn open_append(path: &Path) -> std::io::Result<DiskWalFile> {
        let file = fs::OpenOptions::new().append(true).open(path)?;
        Ok(DiskWalFile { file })
    }
}

impl WalFile for DiskWalFile {
    fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)
    }

    fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()
    }
}

/// Fsyncs the parent directory of `path`, making a rename or file creation
/// within it durable. A rename is only crash-safe once the *directory*
/// entry has been synced; fsyncing the file alone is not enough.
pub fn sync_parent_dir(path: &Path) -> std::io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    fs::File::open(parent)?.sync_all()
}

/// Counters exported by [`Wal::stats`]: enough to compute the group-commit
/// coalescing ratio (`appended_records / flushes`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Mutations appended (tickets issued).
    pub appended_records: u64,
    /// Flush-leader write+sync passes (one fsync each when fsync is on).
    pub flushes: u64,
    /// Total frame bytes written by flushes.
    pub flushed_bytes: u64,
}

struct WalState {
    /// Encoded frames appended but not yet handed to a flush leader.
    pending: Vec<u8>,
    pending_records: usize,
    /// Next LSN to assign.
    next_lsn: Lsn,
    /// Highest LSN whose frame has been written and synced.
    durable_lsn: Lsn,
    /// A flush leader is writing outside the lock.
    flushing: bool,
    /// Sticky I/O failure: set on the first failed flush, fails every
    /// subsequent commit.
    failed: Option<String>,
    /// Bytes appended to the current segment since the last rotation
    /// (drives the auto-compaction threshold).
    segment_bytes: u64,
    /// Scratch buffer reused across payload encodings.
    scratch: Vec<u8>,
}

/// The write-ahead log: ticketed appends plus a group-committing flusher.
///
/// Created internally by
/// [`Database::open_durable`](crate::Database::open_durable); tests can
/// build one over an injected [`WalFile`] via [`Wal::with_file`].
pub struct Wal {
    state: Mutex<WalState>,
    /// Touched only by the flush leader (and rotation). Lock order: `state`
    /// before `file`; the leader takes `file` *without* holding `state`, so
    /// appends keep making progress during the fsync. Rotation takes both
    /// (state first) only after draining any in-flight flush, so no cycle.
    file: Mutex<Box<dyn WalFile>>,
    cv: Condvar,
    group_window: Duration,
    max_batch_records: usize,
    fsync: bool,
    appended_records: AtomicU64,
    flushes: AtomicU64,
    flushed_bytes: AtomicU64,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.lock_state();
        f.debug_struct("Wal")
            .field("next_lsn", &st.next_lsn)
            .field("durable_lsn", &st.durable_lsn)
            .field("pending_records", &st.pending_records)
            .finish()
    }
}

impl Wal {
    /// Builds a WAL over `file`, which must already be positioned at the
    /// end of a valid log whose last record is `last_lsn` (0 for a fresh
    /// log). `segment_bytes` seeds the compaction accounting with the bytes
    /// already in the tail segment.
    pub fn with_file(file: Box<dyn WalFile>, last_lsn: Lsn, config: &DurabilityConfig) -> Wal {
        Wal {
            state: Mutex::new(WalState {
                pending: Vec::new(),
                pending_records: 0,
                next_lsn: last_lsn.saturating_add(1),
                durable_lsn: last_lsn,
                flushing: false,
                failed: None,
                segment_bytes: 0,
                scratch: Vec::new(),
            }),
            file: Mutex::new(file),
            cv: Condvar::new(),
            group_window: config.group_window,
            max_batch_records: config.max_batch_records.max(1),
            fsync: config.fsync,
            appended_records: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            flushed_bytes: AtomicU64::new(0),
        }
    }

    fn lock_state(&self) -> MutexGuard<'_, WalState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    fn lock_file(&self) -> MutexGuard<'_, Box<dyn WalFile>> {
        self.file
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Appends a `Put` frame; returns the commit ticket.
    pub fn append_put(&self, table: &str, key: &[u8], value: &[u8]) -> Result<Lsn, StoreError> {
        self.append_payload(|out| {
            codec::write_varint(0, out);
            write_bytes(table.as_bytes(), out);
            write_bytes(key, out);
            write_bytes(value, out);
        })
    }

    /// Appends a `Remove` frame; returns the commit ticket.
    pub fn append_remove(&self, table: &str, key: &[u8]) -> Result<Lsn, StoreError> {
        self.append_payload(|out| {
            codec::write_varint(1, out);
            write_bytes(table.as_bytes(), out);
            write_bytes(key, out);
        })
    }

    /// Appends a `DropTable` frame; returns the commit ticket.
    pub fn append_drop_table(&self, table: &str) -> Result<Lsn, StoreError> {
        self.append_payload(|out| {
            codec::write_varint(2, out);
            write_bytes(table.as_bytes(), out);
        })
    }

    /// Appends a `ClearTable` frame; returns the commit ticket.
    pub fn append_clear(&self, table: &str) -> Result<Lsn, StoreError> {
        self.append_payload(|out| {
            codec::write_varint(3, out);
            write_bytes(table.as_bytes(), out);
        })
    }

    fn append_payload(&self, build: impl FnOnce(&mut Vec<u8>)) -> Result<Lsn, StoreError> {
        let mut st = self.lock_state();
        if let Some(reason) = &st.failed {
            return Err(wal_failed(reason));
        }
        let mut payload = std::mem::take(&mut st.scratch);
        payload.clear();
        build(&mut payload);
        let lsn = st.next_lsn;
        let framed = encode_frame(lsn, &payload, &mut st.pending);
        st.scratch = payload;
        let frame_len = framed?;
        st.next_lsn = lsn.saturating_add(1);
        st.pending_records += 1;
        st.segment_bytes = st.segment_bytes.saturating_add(frame_len);
        self.appended_records.fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Parks until every record up to and including `lsn` is durable.
    ///
    /// # Errors
    ///
    /// Returns the sticky I/O error if any flush has failed; the record may
    /// then be in memory but is not guaranteed on disk.
    pub fn commit(&self, lsn: Lsn) -> Result<(), StoreError> {
        let mut st = self.lock_state();
        let mut lingered = false;
        loop {
            if st.durable_lsn >= lsn {
                return Ok(());
            }
            if let Some(reason) = &st.failed {
                return Err(wal_failed(reason));
            }
            if st.flushing {
                // A leader is writing our batch (or the one before it);
                // park on the commit ticket until durable_lsn advances.
                // lint: allow(lock-discipline) condvar wait releases the guard while parked
                st = self
                    .cv
                    .wait(st)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                continue;
            }
            // We are the flush leader. Linger once so concurrent writers
            // can join the batch, then write + sync it outside the lock.
            if !lingered
                && !self.group_window.is_zero()
                && st.pending_records < self.max_batch_records
            {
                lingered = true;
                // lint: allow(lock-discipline) group-commit window: the wait releases the guard so writers can append
                let (guard, _timed_out) = self
                    .cv
                    .wait_timeout(st, self.group_window)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                st = guard;
                continue;
            }
            st.flushing = true;
            let batch = std::mem::take(&mut st.pending);
            st.pending_records = 0;
            let target = st.next_lsn.saturating_sub(1);
            drop(st);

            let write_res = self.write_batch_to_file(&batch);

            st = self.lock_state();
            st.flushing = false;
            match write_res {
                Ok(()) => {
                    st.durable_lsn = st.durable_lsn.max(target);
                    self.flushes.fetch_add(1, Ordering::Relaxed);
                    self.flushed_bytes
                        .fetch_add(batch.len() as u64, Ordering::Relaxed);
                }
                Err(e) => {
                    st.failed = Some(e.to_string());
                }
            }
            self.cv.notify_all();
        }
    }

    /// Writes and (configurably) syncs one batch. Called by the flush
    /// leader with the state lock released, so appends continue in parallel.
    fn write_batch_to_file(&self, batch: &[u8]) -> std::io::Result<()> {
        let mut file = self.lock_file();
        if !batch.is_empty() {
            file.append(batch)?;
        }
        if self.fsync {
            file.sync()
        } else {
            Ok(())
        }
    }

    /// Flushes everything appended so far and returns the highest durable
    /// LSN — the compaction cut.
    pub fn sync_all(&self) -> Result<Lsn, StoreError> {
        let target = self.lock_state().next_lsn.saturating_sub(1);
        self.commit(target)?;
        Ok(target)
    }

    /// Highest LSN acked durable so far.
    pub fn durable_lsn(&self) -> Lsn {
        self.lock_state().durable_lsn
    }

    /// Bytes appended to the current segment since the last rotation.
    pub fn segment_bytes(&self) -> u64 {
        self.lock_state().segment_bytes
    }

    /// Seeds the segment-size accounting with bytes already present in the
    /// tail segment at recovery, so a reopened log still compacts on time.
    pub(crate) fn seed_segment_bytes(&self, bytes: u64) {
        self.lock_state().segment_bytes = bytes;
    }

    /// Flush/append counters for coalescing-ratio reporting.
    pub fn stats(&self) -> WalStats {
        WalStats {
            appended_records: self.appended_records.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            flushed_bytes: self.flushed_bytes.load(Ordering::Relaxed),
        }
    }

    /// Seals the current segment and switches appends to a fresh one in
    /// `dir`, returning the cut LSN `S`: every record with LSN ≤ S is
    /// durable in sealed segments; every later record lands in the new
    /// segment. If the current segment holds no frames, no new file is
    /// created and the current segment simply continues.
    pub(crate) fn rotate(&self, dir: &Path) -> Result<Lsn, StoreError> {
        let mut st = self.lock_state();
        loop {
            if let Some(reason) = &st.failed {
                return Err(wal_failed(reason));
            }
            if !st.flushing {
                break;
            }
            // Drain the in-flight flush before swapping files.
            // lint: allow(lock-discipline) condvar wait releases the guard while parked
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
        let cut = st.next_lsn.saturating_sub(1);
        // No leader is in flight and we hold the state lock, so taking the
        // file lock here (state → file order) cannot deadlock. Appends
        // pause on the state lock for the duration — rotation is rare (one
        // per compaction).
        let mut file = self.lock_file();
        if !st.pending.is_empty() {
            let batch = std::mem::take(&mut st.pending);
            st.pending_records = 0;
            let res = file
                .append(&batch)
                .and_then(|()| if self.fsync { file.sync() } else { Ok(()) });
            if let Err(e) = res {
                st.failed = Some(e.to_string());
                self.cv.notify_all();
                return Err(StoreError::Io(e));
            }
            st.durable_lsn = st.durable_lsn.max(cut);
            st.segment_bytes = st.segment_bytes.saturating_add(batch.len() as u64);
            self.flushes.fetch_add(1, Ordering::Relaxed);
            self.flushed_bytes
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            self.cv.notify_all();
        }
        if st.segment_bytes > 0 {
            let next = segment_path(dir, cut.saturating_add(1));
            let fresh = DiskWalFile::create(&next)?;
            *file = Box::new(fresh);
            st.segment_bytes = 0;
        }
        Ok(cut)
    }
}

fn wal_failed(reason: &str) -> StoreError {
    StoreError::Io(std::io::Error::new(
        std::io::ErrorKind::Other,
        format!("write-ahead log failed: {reason}"),
    ))
}

fn write_bytes(b: &[u8], out: &mut Vec<u8>) {
    codec::write_varint(b.len() as u64, out);
    out.extend_from_slice(b);
}

/// Encodes one frame (header, payload, checksum trailer) into `out`,
/// returning the frame's byte length.
fn encode_frame(lsn: Lsn, payload: &[u8], out: &mut Vec<u8>) -> Result<u64, StoreError> {
    let payload_len = u32::try_from(payload.len()).map_err(|_| StoreError::Corrupt {
        reason: "wal record payload exceeds 4 GiB".into(),
    })?;
    let lsn_bytes = lsn.to_le_bytes();
    let len_bytes = payload_len.to_le_bytes();
    out.reserve(FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN);
    out.extend_from_slice(&lsn_bytes);
    out.extend_from_slice(&len_bytes);
    out.extend_from_slice(payload);
    out.extend_from_slice(&sha256_concat(&[&lsn_bytes, &len_bytes, payload]));
    Ok((FRAME_HEADER_LEN + payload.len() + FRAME_TRAILER_LEN) as u64)
}

/// One decoded WAL frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The frame's log sequence number.
    pub lsn: Lsn,
    /// The decoded mutation.
    pub mutation: Mutation,
}

/// Result of scanning one segment's bytes.
#[derive(Debug)]
pub struct ScanOutcome {
    /// Frames of the well-formed prefix, in LSN order.
    pub records: Vec<WalRecord>,
    /// Byte length of the well-formed prefix (magic included). Equal to the
    /// input length when `clean`.
    pub valid_len: u64,
    /// Whether the whole segment parsed: `false` means a torn or corrupt
    /// tail begins at `valid_len`.
    pub clean: bool,
}

/// Parses a segment: magic header then frames, stopping at the first
/// truncated frame, checksum mismatch, undecodable payload, or LSN-sequence
/// break. Everything before the stop point is returned; recovery truncates
/// the file at `valid_len` and carries on.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] only if the magic header itself is
/// missing or wrong — the file is then not a WAL segment at all.
pub fn scan_segment(bytes: &[u8]) -> Result<ScanOutcome, StoreError> {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::Corrupt {
            reason: "bad wal segment magic".into(),
        });
    }
    let mut records = Vec::new();
    let mut offset = WAL_MAGIC.len();
    let mut prev_lsn: Option<Lsn> = None;
    let clean = loop {
        let rest = &bytes[offset..];
        if rest.is_empty() {
            break true;
        }
        let Some(frame) = decode_frame(rest) else {
            break false;
        };
        let (lsn, payload, frame_len) = frame;
        if let Some(prev) = prev_lsn {
            if lsn != prev.saturating_add(1) {
                break false;
            }
        }
        let Ok(mutation) = codec::from_bytes::<Mutation>(payload) else {
            break false;
        };
        records.push(WalRecord { lsn, mutation });
        prev_lsn = Some(lsn);
        offset += frame_len;
    };
    Ok(ScanOutcome {
        records,
        valid_len: offset as u64,
        clean,
    })
}

/// Decodes one frame from the head of `bytes`: returns `(lsn, payload,
/// frame_len)` or `None` on truncation / checksum mismatch.
fn decode_frame(bytes: &[u8]) -> Option<(Lsn, &[u8], usize)> {
    if bytes.len() < FRAME_HEADER_LEN + FRAME_TRAILER_LEN {
        return None;
    }
    let lsn_bytes: [u8; 8] = bytes.get(..8)?.try_into().ok()?;
    let len_bytes: [u8; 4] = bytes.get(8..12)?.try_into().ok()?;
    let payload_len = usize::try_from(u32::from_le_bytes(len_bytes)).ok()?;
    let frame_len = FRAME_HEADER_LEN + payload_len + FRAME_TRAILER_LEN;
    if bytes.len() < frame_len {
        return None;
    }
    let payload = bytes.get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + payload_len)?;
    let checksum = bytes.get(FRAME_HEADER_LEN + payload_len..frame_len)?;
    let expect = sha256_concat(&[&lsn_bytes, &len_bytes, payload]);
    if !ct_eq(&expect, checksum) {
        return None;
    }
    Some((Lsn::from_le_bytes(lsn_bytes), payload, frame_len))
}

/// Path of the segment whose first record is `first_lsn`.
pub(crate) fn segment_path(dir: &Path, first_lsn: Lsn) -> PathBuf {
    dir.join(format!("wal-{first_lsn:020}.log"))
}

/// Lists segment files in `dir`, sorted by first LSN.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<(Lsn, PathBuf)>, StoreError> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name
            .strip_prefix("wal-")
            .and_then(|s| s.strip_suffix(".log"))
        else {
            continue;
        };
        let Ok(first_lsn) = stem.parse::<Lsn>() else {
            continue;
        };
        segments.push((first_lsn, entry.path()));
    }
    segments.sort();
    Ok(segments)
}

/// Applies one mutation to a plain map-of-maps (the recovery working set).
pub(crate) fn apply_mutation(
    tables: &mut BTreeMap<String, BTreeMap<Vec<u8>, Vec<u8>>>,
    mutation: Mutation,
) {
    match mutation {
        Mutation::Put { table, key, value } => {
            tables.entry(table).or_default().insert(key, value);
        }
        Mutation::Remove { table, key } => {
            if let Some(rows) = tables.get_mut(&table) {
                rows.remove(&key);
            }
        }
        Mutation::DropTable { table } => {
            tables.remove(&table);
        }
        Mutation::ClearTable { table } => {
            tables.entry(table).or_default().clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// In-memory [`WalFile`] with an explicit volatile/durable split: bytes
    /// reach `durable` only on `sync`, modelling a kill between write-back
    /// and fsync.
    struct MemFile {
        shared: Arc<StdMutex<MemFileState>>,
    }

    #[derive(Default)]
    struct MemFileState {
        volatile: Vec<u8>,
        durable: Vec<u8>,
        fail_after_syncs: Option<u64>,
        syncs: u64,
    }

    impl MemFile {
        fn new() -> (MemFile, Arc<StdMutex<MemFileState>>) {
            let shared = Arc::new(StdMutex::new(MemFileState {
                volatile: WAL_MAGIC.to_vec(),
                durable: WAL_MAGIC.to_vec(),
                ..Default::default()
            }));
            (
                MemFile {
                    shared: Arc::clone(&shared),
                },
                shared,
            )
        }
    }

    impl WalFile for MemFile {
        fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            self.shared
                .lock()
                .unwrap()
                .volatile
                .extend_from_slice(bytes);
            Ok(())
        }

        fn sync(&mut self) -> std::io::Result<()> {
            let mut st = self.shared.lock().unwrap();
            if let Some(limit) = st.fail_after_syncs {
                if st.syncs >= limit {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Other,
                        "injected sync failure",
                    ));
                }
            }
            st.syncs += 1;
            let volatile = std::mem::take(&mut st.volatile);
            st.durable = volatile.clone();
            st.volatile = volatile;
            Ok(())
        }
    }

    fn quick_config() -> DurabilityConfig {
        DurabilityConfig {
            group_window: Duration::ZERO,
            ..DurabilityConfig::default()
        }
    }

    #[test]
    fn payload_encoding_matches_mutation_codec() {
        let m = Mutation::Put {
            table: "users".into(),
            key: vec![1, 2, 3],
            value: vec![9, 8],
        };
        let via_enum = codec::to_bytes(&m).unwrap();
        let mut via_manual = Vec::new();
        codec::write_varint(0, &mut via_manual);
        write_bytes(b"users", &mut via_manual);
        write_bytes(&[1, 2, 3], &mut via_manual);
        write_bytes(&[9, 8], &mut via_manual);
        assert_eq!(via_enum, via_manual);

        let m = Mutation::Remove {
            table: "t".into(),
            key: vec![7],
        };
        let via_enum = codec::to_bytes(&m).unwrap();
        let mut via_manual = Vec::new();
        codec::write_varint(1, &mut via_manual);
        write_bytes(b"t", &mut via_manual);
        write_bytes(&[7], &mut via_manual);
        assert_eq!(via_enum, via_manual);
    }

    #[test]
    fn append_commit_scan_roundtrip() {
        let (file, shared) = MemFile::new();
        let wal = Wal::with_file(Box::new(file), 0, &quick_config());
        let l1 = wal.append_put("t", b"k1", b"v1").unwrap();
        let l2 = wal.append_remove("t", b"k1").unwrap();
        assert_eq!((l1, l2), (1, 2));
        wal.commit(l2).unwrap();

        let bytes = shared.lock().unwrap().durable.clone();
        let outcome = scan_segment(&bytes).unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.records[0].lsn, 1);
        assert_eq!(
            outcome.records[1].mutation,
            Mutation::Remove {
                table: "t".into(),
                key: b"k1".to_vec(),
            }
        );
    }

    #[test]
    fn commit_is_acked_only_after_sync() {
        let (file, shared) = MemFile::new();
        let wal = Wal::with_file(Box::new(file), 0, &quick_config());
        let lsn = wal.append_put("t", b"k", b"v").unwrap();
        // Before commit: the record must not be durable.
        {
            let st = shared.lock().unwrap();
            let outcome = scan_segment(&st.durable).unwrap();
            assert!(outcome.records.is_empty());
        }
        wal.commit(lsn).unwrap();
        let st = shared.lock().unwrap();
        let outcome = scan_segment(&st.durable).unwrap();
        assert_eq!(outcome.records.len(), 1);
    }

    #[test]
    fn sync_failure_is_sticky_and_commit_errors() {
        let (file, shared) = MemFile::new();
        shared.lock().unwrap().fail_after_syncs = Some(0);
        let wal = Wal::with_file(Box::new(file), 0, &quick_config());
        let lsn = wal.append_put("t", b"k", b"v").unwrap();
        assert!(wal.commit(lsn).is_err());
        // Sticky: the next append also reports the failure.
        assert!(wal.append_put("t", b"k2", b"v2").is_err());
        // And nothing was acked durable.
        let st = shared.lock().unwrap();
        assert!(scan_segment(&st.durable).unwrap().records.is_empty());
    }

    #[test]
    fn concurrent_commits_coalesce_into_fewer_syncs() {
        let (file, _shared) = MemFile::new();
        let wal = Arc::new(Wal::with_file(
            Box::new(file),
            0,
            &DurabilityConfig {
                group_window: Duration::from_millis(2),
                ..DurabilityConfig::default()
            },
        ));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let wal = Arc::clone(&wal);
                s.spawn(move || {
                    for i in 0..50u64 {
                        let key = (t * 1000 + i).to_le_bytes();
                        let lsn = wal.append_put("t", &key, b"v").unwrap();
                        wal.commit(lsn).unwrap();
                    }
                });
            }
        });
        let stats = wal.stats();
        assert_eq!(stats.appended_records, 400);
        assert!(
            stats.flushes < stats.appended_records,
            "expected coalescing, got {} flushes for {} records",
            stats.flushes,
            stats.appended_records
        );
    }

    #[test]
    fn scan_stops_at_torn_tail_and_bit_flip() {
        let (file, shared) = MemFile::new();
        let wal = Wal::with_file(Box::new(file), 0, &quick_config());
        for i in 0..5u8 {
            let lsn = wal.append_put("t", &[i], &[i, i]).unwrap();
            wal.commit(lsn).unwrap();
        }
        let full = shared.lock().unwrap().durable.clone();
        let outcome = scan_segment(&full).unwrap();
        assert!(outcome.clean);
        assert_eq!(outcome.records.len(), 5);
        assert_eq!(outcome.valid_len, full.len() as u64);

        // Torn tail: truncating exactly at the fourth frame's end is a
        // clean, shorter log; every cut *inside* the final frame yields the
        // first four records with a dirty tail.
        let frame_len = (full.len() - WAL_MAGIC.len()) / 5;
        let fourth_end = WAL_MAGIC.len() + 4 * frame_len;
        let boundary = scan_segment(&full[..fourth_end]).unwrap();
        assert!(boundary.clean);
        assert_eq!(boundary.records.len(), 4);
        for cut in fourth_end + 1..full.len() {
            let torn = &full[..cut];
            let outcome = scan_segment(torn).unwrap();
            assert_eq!(outcome.records.len(), 4, "cut at {cut}");
            assert!(!outcome.clean, "cut at {cut}");
            assert_eq!(outcome.valid_len, fourth_end as u64);
        }

        // Bit flip mid-log: records before the flipped frame survive.
        let mut flipped = full.clone();
        let target = WAL_MAGIC.len() + 2 * frame_len + FRAME_HEADER_LEN + 1;
        flipped[target] ^= 0x40;
        let outcome = scan_segment(&flipped).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert!(!outcome.clean);
    }

    #[test]
    fn scan_rejects_bad_magic() {
        assert!(scan_segment(b"NOTAWAL!").is_err());
        assert!(scan_segment(b"").is_err());
    }

    #[test]
    fn lsn_sequence_break_stops_scan() {
        // Hand-build two frames with a gap in the LSN sequence.
        let mut bytes = WAL_MAGIC.to_vec();
        let payload = codec::to_bytes(&Mutation::ClearTable { table: "t".into() }).unwrap();
        encode_frame(1, &payload, &mut bytes).unwrap();
        encode_frame(3, &payload, &mut bytes).unwrap();
        let outcome = scan_segment(&bytes).unwrap();
        assert_eq!(outcome.records.len(), 1);
        assert!(!outcome.clean);
    }
}
