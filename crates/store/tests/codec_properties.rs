//! Property-based tests of the binary codec over rich, recursive value
//! shapes, on the in-repo `amnesia-testkit` harness.

use amnesia_store::codec::{from_bytes, to_bytes};
use amnesia_store::record_enum;
use amnesia_testkit::{for_all, require, require_eq, require_ne, Gen};
use std::collections::BTreeMap;

const CASES: u32 = 256;

/// A recursive value covering every shape the codec supports.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Unit,
    Bool(bool),
    Int(i64),
    Big(u128),
    Float(u64), // store bits to keep equality exact
    Text(String),
    Blob(Vec<u8>),
    Maybe(Option<Box<Value>>),
    List(Vec<Value>),
    Map(BTreeMap<String, Value>),
    Pair(Box<Value>, Box<Value>),
    Record {
        id: u32,
        name: String,
        tags: Vec<String>,
    },
}

record_enum! {
    Value {
        0 => Unit,
        1 => Bool(b),
        2 => Int(v),
        3 => Big(v),
        4 => Float(bits),
        5 => Text(s),
        6 => Blob(bytes),
        7 => Maybe(inner),
        8 => List(items),
        9 => Map(entries),
        10 => Pair(a, b),
        11 => Record { id, name, tags },
    }
}

fn leaf(g: &mut Gen) -> Value {
    match g.usize_in(0, 6) {
        0 => Value::Unit,
        1 => Value::Bool(g.next_bool()),
        2 => Value::Int(g.next_u64() as i64),
        3 => Value::Big(((g.next_u64() as u128) << 64) | g.next_u64() as u128),
        4 => Value::Float(g.next_u64()),
        5 => Value::Text(g.ascii_string(24)),
        _ => Value::Blob(g.bytes_upto(31)),
    }
}

/// Recursive generator with bounded depth; biased toward leaves so trees
/// stay small.
fn arb_value(g: &mut Gen, depth: usize) -> Value {
    if depth == 0 || g.usize_in(0, 2) == 0 {
        return leaf(g);
    }
    match g.usize_in(0, 4) {
        0 => {
            if g.next_bool() {
                Value::Maybe(None)
            } else {
                Value::Maybe(Some(Box::new(arb_value(g, depth - 1))))
            }
        }
        1 => {
            let n = g.usize_in(0, 5);
            Value::List((0..n).map(|_| arb_value(g, depth - 1)).collect())
        }
        2 => {
            let n = g.usize_in(0, 4);
            let mut entries = BTreeMap::new();
            for _ in 0..n {
                let key = g.ident(6);
                let value = arb_value(g, depth - 1);
                entries.insert(key, value);
            }
            Value::Map(entries)
        }
        3 => {
            let a = arb_value(g, depth - 1);
            let b = arb_value(g, depth - 1);
            Value::Pair(Box::new(a), Box::new(b))
        }
        _ => {
            let id = g.next_u64() as u32;
            let name = g.ident(8);
            let tag_count = g.usize_in(0, 3);
            let tags = (0..tag_count).map(|_| g.ident(5)).collect();
            Value::Record { id, name, tags }
        }
    }
}

/// Every representable value roundtrips exactly.
#[test]
fn roundtrip() {
    for_all("codec roundtrip", CASES, |g: &mut Gen| {
        let value = arb_value(g, 3);
        let bytes = to_bytes(&value).unwrap();
        let back: Value = from_bytes(&bytes).unwrap();
        require_eq!(back, value);
        Ok(())
    });
}

/// Encoding is deterministic (required for the checksummed snapshots).
#[test]
fn deterministic() {
    for_all("codec deterministic", CASES, |g: &mut Gen| {
        let value = arb_value(g, 3);
        require_eq!(to_bytes(&value).unwrap(), to_bytes(&value).unwrap());
        Ok(())
    });
}

/// Truncating an encoding at any point yields an error, never a panic or a
/// silent success.
#[test]
fn truncation_always_errors() {
    for_all("codec truncation", CASES, |g: &mut Gen| {
        let value = arb_value(g, 3);
        let bytes = to_bytes(&value).unwrap();
        // Every encoding starts with a variant tag, so it is never empty,
        // and f64_unit < 1 keeps the cut strictly inside the buffer.
        let cut = (bytes.len() as f64 * g.f64_unit()) as usize;
        let result: Result<Value, _> = from_bytes(&bytes[..cut]);
        // Truncation may accidentally decode to a *different* valid value
        // only if the prefix happens to be self-delimiting — but then the
        // trailing-bytes check cannot fire (we cut inside). Either way,
        // decoding the truncated buffer must not reproduce the original.
        match result {
            Err(_) => {}
            Ok(decoded) => require_ne!(decoded, value),
        }
        Ok(())
    });
}

/// Appending garbage after a valid encoding is rejected.
#[test]
fn trailing_garbage_rejected() {
    for_all("codec trailing garbage", CASES, |g: &mut Gen| {
        let value = arb_value(g, 3);
        let mut bytes = to_bytes(&value).unwrap();
        let extra = g.usize_in(1, 7);
        bytes.extend(std::iter::repeat_n(0u8, extra));
        let result: Result<Value, _> = from_bytes(&bytes);
        require!(result.is_err(), "trailing garbage accepted");
        Ok(())
    });
}

/// Random byte soup never panics the decoder.
#[test]
fn fuzz_decode_never_panics() {
    for_all("codec fuzz decode", CASES, |g: &mut Gen| {
        let bytes = g.bytes_upto(255);
        let _: Result<Value, _> = from_bytes(&bytes);
        Ok(())
    });
}

/// Tuples, strings and maps preserve ordering and length exactly.
#[test]
fn containers_preserve_structure() {
    for_all("codec containers", CASES, |g: &mut Gen| {
        let item_count = g.usize_in(0, 63);
        let items: Vec<i32> = (0..item_count).map(|_| g.next_u64() as i32).collect();
        let entry_count = g.usize_in(0, 15);
        let mut map: BTreeMap<String, u16> = BTreeMap::new();
        for _ in 0..entry_count {
            let key = g.ident(4);
            let value = g.u64_in(0, u16::MAX as u64) as u16;
            map.insert(key, value);
        }
        let bytes = to_bytes(&(items.clone(), map.clone())).unwrap();
        let (back_items, back_map): (Vec<i32>, BTreeMap<String, u16>) = from_bytes(&bytes).unwrap();
        require_eq!(back_items, items);
        require_eq!(back_map, map);
        Ok(())
    });
}
