//! Property-based tests of the binary codec over rich, recursive value
//! shapes.

use amnesia_store::codec::{from_bytes, to_bytes};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A recursive value covering every serde data-model case the codec
/// supports.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
enum Value {
    Unit,
    Bool(bool),
    Int(i64),
    Big(u128),
    Float(u64), // store bits to keep equality exact
    Text(String),
    Blob(Vec<u8>),
    Maybe(Option<Box<Value>>),
    List(Vec<Value>),
    Map(BTreeMap<String, Value>),
    Pair(Box<Value>, Box<Value>),
    Record {
        id: u32,
        name: String,
        tags: Vec<String>,
    },
}

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Unit),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<u128>().prop_map(Value::Big),
        any::<u64>().prop_map(Value::Float),
        ".{0,24}".prop_map(Value::Text),
        proptest::collection::vec(any::<u8>(), 0..32).prop_map(Value::Blob),
    ];
    leaf.prop_recursive(3, 48, 6, |inner| {
        prop_oneof![
            proptest::option::of(inner.clone().prop_map(Box::new)).prop_map(Value::Maybe),
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Value::List),
            proptest::collection::btree_map("[a-z]{0,6}", inner.clone(), 0..5).prop_map(Value::Map),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Value::Pair(Box::new(a), Box::new(b))),
            (
                any::<u32>(),
                "[a-z]{0,8}",
                proptest::collection::vec("[a-z]{0,5}".prop_map(String::from), 0..4)
            )
                .prop_map(|(id, name, tags)| Value::Record { id, name, tags }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every representable value roundtrips exactly.
    #[test]
    fn roundtrip(value in arb_value()) {
        let bytes = to_bytes(&value).unwrap();
        let back: Value = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, value);
    }

    /// Encoding is deterministic (required for the checksummed snapshots).
    #[test]
    fn deterministic(value in arb_value()) {
        prop_assert_eq!(to_bytes(&value).unwrap(), to_bytes(&value).unwrap());
    }

    /// Truncating an encoding at any point yields an error, never a panic
    /// or a silent success.
    #[test]
    fn truncation_always_errors(value in arb_value(), cut_ratio in 0.0f64..1.0) {
        let bytes = to_bytes(&value).unwrap();
        prop_assume!(!bytes.is_empty());
        let cut = ((bytes.len() as f64) * cut_ratio) as usize;
        prop_assume!(cut < bytes.len());
        let result: Result<Value, _> = from_bytes(&bytes[..cut]);
        // Truncation may accidentally decode to a *different* valid value
        // only if the prefix happens to be self-delimiting — but then the
        // trailing-bytes check cannot fire (we cut inside). Either way,
        // decoding the truncated buffer must not reproduce the original.
        match result {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, value),
        }
    }

    /// Appending garbage after a valid encoding is rejected.
    #[test]
    fn trailing_garbage_rejected(value in arb_value(), extra in 1usize..8) {
        let mut bytes = to_bytes(&value).unwrap();
        bytes.extend(std::iter::repeat_n(0u8, extra));
        let result: Result<Value, _> = from_bytes(&bytes);
        prop_assert!(result.is_err());
    }

    /// Random byte soup never panics the decoder.
    #[test]
    fn fuzz_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _: Result<Value, _> = from_bytes(&bytes);
    }

    /// Tuples, strings and maps preserve ordering and length exactly.
    #[test]
    fn containers_preserve_structure(
        items in proptest::collection::vec(any::<i32>(), 0..64),
        map in proptest::collection::btree_map("[a-z]{1,4}", any::<u16>(), 0..16),
    ) {
        let bytes = to_bytes(&(items.clone(), map.clone())).unwrap();
        let (back_items, back_map): (Vec<i32>, BTreeMap<String, u16>) =
            from_bytes(&bytes).unwrap();
        prop_assert_eq!(back_items, items);
        prop_assert_eq!(back_map, map);
    }
}
