//! Deployment configuration and calibrated network profiles.

use amnesia_crypto::KdfPolicy;
use amnesia_net::{LatencyModel, SimDuration};

/// Per-leg latency models plus component compute times.
///
/// The measured quantity of the paper's Figure 3 is
/// `latency = tend − tstart` where `tstart` is stamped when the server hands
/// `R` to the rendezvous and `tend` after the server computes `P` from the
/// returned token. The legs inside that window are
/// server → GCM, GCM → phone (push), phone compute, phone → server
/// (direct), and the final server compute.
///
/// The [`wifi`](NetProfile::wifi) and [`cellular_4g`](NetProfile::cellular_4g)
/// constructors are calibrated so the end-to-end sum matches the paper's
/// measurements (Wifi x̄ = 785.3 ms, σ = 171.5; 4G x̄ = 978.7 ms,
/// σ = 137.9): means add across legs, and for independent normal legs the
/// variances add. EXPERIMENTS.md records the decomposition.
#[derive(Clone, Debug, PartialEq)]
pub struct NetProfile {
    /// Human-readable name ("wifi", "4g", …).
    pub name: String,
    /// Browser ↔ server HTTPS link (both directions; outside the measured
    /// window but part of user-perceived latency).
    pub browser_server: LatencyModel,
    /// Server → rendezvous upload (EC2 → Google backbone).
    pub server_gcm: LatencyModel,
    /// Rendezvous → phone push delivery (the access network's last mile).
    pub gcm_phone: LatencyModel,
    /// Phone → server direct upload (access network + Internet).
    pub phone_server: LatencyModel,
    /// Server-side time to derive `R` and assemble the push.
    pub request_compute: SimDuration,
    /// Phone-side time to run Algorithm 1 (16 table lookups + SHA-256).
    pub token_compute: SimDuration,
    /// Server-side time to compute `p` and render the password.
    pub password_compute: SimDuration,
    /// Probability that a push frame is lost on the rendezvous → phone leg
    /// (mobile push delivery is best-effort; 0.0 in the calibrated paper
    /// profiles, raised by the failure-injection tests).
    pub push_drop_probability: f64,
}

impl NetProfile {
    /// The paper's Wifi condition (Cox Communications, 30/10 Mbps,
    /// suburban).
    ///
    /// Decomposition: server→GCM `N(90, 25)`, GCM→phone `N(352.3, 120)`,
    /// phone→server `N(340, 120)`, computes 2 ms + 1 ms.
    /// Sum: mean `90 + 352.3 + 340 + 3 = 785.3`,
    /// σ = `√(25² + 120² + 120²) = 171.54`.
    pub fn wifi() -> Self {
        NetProfile {
            name: "wifi".into(),
            browser_server: LatencyModel::normal_ms(25.0, 8.0, 5.0),
            server_gcm: LatencyModel::normal_ms(90.0, 25.0, 20.0),
            gcm_phone: LatencyModel::normal_ms(352.3, 120.0, 50.0),
            phone_server: LatencyModel::normal_ms(340.0, 120.0, 50.0),
            request_compute: SimDuration::from_millis(1),
            token_compute: SimDuration::from_millis(2),
            password_compute: SimDuration::from_millis(1),
            push_drop_probability: 0.0,
        }
    }

    /// The paper's 4G condition (T-Mobile, suburban).
    ///
    /// Decomposition: server→GCM `N(90, 25)`, GCM→phone `N(455, 95.9)`,
    /// phone→server `N(430.7, 95.9)`, computes 2 ms + 1 ms.
    /// Sum: mean `90 + 455 + 430.7 + 3 = 978.7`,
    /// σ = `√(25² + 95.9² + 95.9²) = 137.9`.
    pub fn cellular_4g() -> Self {
        NetProfile {
            name: "4g".into(),
            browser_server: LatencyModel::normal_ms(25.0, 8.0, 5.0),
            server_gcm: LatencyModel::normal_ms(90.0, 25.0, 20.0),
            gcm_phone: LatencyModel::normal_ms(455.0, 95.9, 80.0),
            phone_server: LatencyModel::normal_ms(430.7, 95.9, 80.0),
            request_compute: SimDuration::from_millis(1),
            token_compute: SimDuration::from_millis(2),
            password_compute: SimDuration::from_millis(1),
            push_drop_probability: 0.0,
        }
    }

    /// An idealized fast network for functional tests (1 ms everywhere,
    /// zero compute).
    pub fn lan() -> Self {
        NetProfile {
            name: "lan".into(),
            browser_server: LatencyModel::constant_ms(1.0),
            server_gcm: LatencyModel::constant_ms(1.0),
            gcm_phone: LatencyModel::constant_ms(1.0),
            phone_server: LatencyModel::constant_ms(1.0),
            request_compute: SimDuration::ZERO,
            token_compute: SimDuration::ZERO,
            password_compute: SimDuration::ZERO,
            push_drop_probability: 0.0,
        }
    }

    /// Returns a copy with the push leg made lossy (failure injection).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn with_push_drop_probability(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        self.push_drop_probability = p;
        self
    }

    /// The mean of the Figure 3 measured window implied by this profile
    /// (legs inside `tend − tstart` plus compute times).
    pub fn expected_generation_mean_ms(&self) -> f64 {
        self.server_gcm.mean_ms()
            + self.gcm_phone.mean_ms()
            + self.phone_server.mean_ms()
            + self.token_compute.as_millis_f64()
            + self.password_compute.as_millis_f64()
    }
}

/// Top-level deployment parameters.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Seed splitting into per-component deterministic streams.
    pub seed: u64,
    /// Network latency profile.
    pub profile: NetProfile,
    /// KDF hardness policy on stored verifiers ([`KdfPolicy::PAPER`] =
    /// the paper's salted hash; ladder rungs buy memory-hardness).
    pub kdf_policy: KdfPolicy,
    /// Entry-table size `N` for newly installed phones.
    pub table_size: usize,
    /// Whether browser↔server and phone↔server traffic is sealed with the
    /// toy AE channel (HTTPS on) — disable only to demonstrate what a
    /// wiretap sees without HTTPS.
    pub secure_channels: bool,
    /// Per-session timeout armed with every protocol send; an expired
    /// session retries (if its attempt budget allows) or fails with
    /// `SystemError::MissingReply`.
    pub session_timeout: SimDuration,
    /// Bounded in-flight cap for batch drivers
    /// (`generate_passwords_concurrent`): at most this many sessions are
    /// open at once; the rest wait in the batch's backlog. `usize::MAX`
    /// (the default) keeps the historical open-everything behaviour.
    pub max_inflight: usize,
    /// Overrides the server's DRBG seed (normally drawn from the `seed`
    /// stream). Sharded deployments use this to build a byte-identical
    /// single-host ground truth for one shard.
    pub server_seed: Option<u64>,
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig {
            seed: 0,
            profile: NetProfile::lan(),
            kdf_policy: KdfPolicy::PAPER,
            table_size: amnesia_core::EntryTable::DEFAULT_SIZE,
            secure_channels: true,
            session_timeout: crate::session::DEFAULT_TIMEOUT,
            max_inflight: usize::MAX,
            server_seed: None,
        }
    }
}

impl SystemConfig {
    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the network profile.
    pub fn with_profile(mut self, profile: NetProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Overrides the phone entry-table size.
    pub fn with_table_size(mut self, table_size: usize) -> Self {
        self.table_size = table_size;
        self
    }

    /// Selects the KDF hardness rung for stored verifiers.
    pub fn with_kdf_policy(mut self, kdf_policy: KdfPolicy) -> Self {
        self.kdf_policy = kdf_policy;
        self
    }

    /// Enables or disables channel encryption.
    pub fn with_secure_channels(mut self, on: bool) -> Self {
        self.secure_channels = on;
        self
    }

    /// Overrides the per-session timeout.
    pub fn with_session_timeout(mut self, timeout: SimDuration) -> Self {
        self.session_timeout = timeout;
        self
    }

    /// Caps how many sessions batch drivers keep open at once.
    pub fn with_max_inflight(mut self, cap: usize) -> Self {
        self.max_inflight = cap.max(1);
        self
    }

    /// Pins the server's DRBG seed instead of drawing it from the system
    /// seed stream.
    pub fn with_server_seed(mut self, server_seed: u64) -> Self {
        self.server_seed = Some(server_seed);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_profile_sums_to_paper_mean() {
        let p = NetProfile::wifi();
        assert!((p.expected_generation_mean_ms() - 785.3).abs() < 0.01);
    }

    #[test]
    fn cellular_profile_sums_to_paper_mean() {
        let p = NetProfile::cellular_4g();
        assert!((p.expected_generation_mean_ms() - 978.7).abs() < 0.01);
    }

    #[test]
    fn leg_sigmas_compose_to_paper_sigma() {
        // Independent normal legs: variances add.
        let sigma = |m: &LatencyModel| match *m {
            LatencyModel::Normal { std_ms, .. } => std_ms,
            _ => panic!("expected normal"),
        };
        let p = NetProfile::wifi();
        let total = (sigma(&p.server_gcm).powi(2)
            + sigma(&p.gcm_phone).powi(2)
            + sigma(&p.phone_server).powi(2))
        .sqrt();
        assert!((total - 171.5).abs() < 0.2, "wifi sigma {total}");

        let p = NetProfile::cellular_4g();
        let total = (sigma(&p.server_gcm).powi(2)
            + sigma(&p.gcm_phone).powi(2)
            + sigma(&p.phone_server).powi(2))
        .sqrt();
        assert!((total - 137.9).abs() < 0.2, "4g sigma {total}");
    }

    #[test]
    fn wifi_is_faster_than_4g() {
        assert!(
            NetProfile::wifi().expected_generation_mean_ms()
                < NetProfile::cellular_4g().expected_generation_mean_ms()
        );
    }

    #[test]
    fn config_builders() {
        let c = SystemConfig::default()
            .with_seed(7)
            .with_table_size(100)
            .with_secure_channels(false)
            .with_profile(NetProfile::wifi());
        assert_eq!(c.seed, 7);
        assert_eq!(c.table_size, 100);
        assert!(!c.secure_channels);
        assert_eq!(c.profile.name, "wifi");
    }
}
