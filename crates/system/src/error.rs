//! Error type for the deployment layer.

use std::error::Error;
use std::fmt;

/// Errors surfaced while driving end-to-end flows.
#[derive(Debug)]
#[non_exhaustive]
pub enum SystemError {
    /// No component is registered under this endpoint name.
    UnknownComponent {
        /// The endpoint name looked up.
        endpoint: String,
    },
    /// The server rejected an operation (message carried over the wire).
    ServerRejected {
        /// The server's error text.
        message: String,
    },
    /// A flow finished pumping without producing the expected reply.
    MissingReply {
        /// What the flow was waiting for.
        expected: &'static str,
    },
    /// A realtime channel hung up mid-flow (a thread exited or a sender was
    /// dropped while a session was still waiting).
    Disconnected,
    /// A browser-side failure (e.g. building a message without a session).
    Browser(amnesia_client::BrowserError),
    /// A phone-side failure.
    Phone(amnesia_phone::PhoneError),
    /// A direct server API failure.
    Server(amnesia_server::ServerError),
    /// A core-algorithm failure.
    Core(amnesia_core::CoreError),
    /// A cloud-provider failure.
    Cloud(amnesia_cloud::CloudError),
    /// A simulated-network failure.
    Net(amnesia_net::NetError),
    /// A sealed frame failed to open (tampering or key mismatch).
    Channel(amnesia_net::ChannelError),
    /// A wire payload failed to decode.
    Codec(amnesia_store::codec::CodecError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::UnknownComponent { endpoint } => {
                write!(f, "unknown component endpoint {endpoint:?}")
            }
            SystemError::ServerRejected { message } => {
                write!(f, "server rejected the request: {message}")
            }
            SystemError::MissingReply { expected } => {
                write!(f, "flow completed without the expected {expected} reply")
            }
            SystemError::Disconnected => {
                write!(f, "deployment channel disconnected mid-flow")
            }
            SystemError::Browser(e) => write!(f, "browser error: {e}"),
            SystemError::Phone(e) => write!(f, "phone error: {e}"),
            SystemError::Server(e) => write!(f, "server error: {e}"),
            SystemError::Core(e) => write!(f, "core error: {e}"),
            SystemError::Cloud(e) => write!(f, "cloud error: {e}"),
            SystemError::Net(e) => write!(f, "network error: {e}"),
            SystemError::Channel(e) => write!(f, "channel error: {e}"),
            SystemError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Browser(e) => Some(e),
            SystemError::Phone(e) => Some(e),
            SystemError::Server(e) => Some(e),
            SystemError::Core(e) => Some(e),
            SystemError::Cloud(e) => Some(e),
            SystemError::Net(e) => Some(e),
            SystemError::Channel(e) => Some(e),
            SystemError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

macro_rules! from_impl {
    ($src:ty, $variant:ident) => {
        impl From<$src> for SystemError {
            fn from(e: $src) -> Self {
                SystemError::$variant(e)
            }
        }
    };
}

from_impl!(amnesia_client::BrowserError, Browser);
from_impl!(amnesia_phone::PhoneError, Phone);
from_impl!(amnesia_server::ServerError, Server);
from_impl!(amnesia_core::CoreError, Core);
from_impl!(amnesia_cloud::CloudError, Cloud);
from_impl!(amnesia_net::NetError, Net);
from_impl!(amnesia_net::ChannelError, Channel);
from_impl!(amnesia_store::codec::CodecError, Codec);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: SystemError = amnesia_net::NetError::UnknownEndpoint { name: "x".into() }.into();
        assert!(e.to_string().contains("network error"));
        assert!(e.source().is_some());

        let e = SystemError::MissingReply {
            expected: "PasswordReady",
        };
        assert!(e.to_string().contains("PasswordReady"));
    }
}
