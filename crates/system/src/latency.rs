//! The Figure 3 latency experiment harness.
//!
//! The paper instruments the prototype: `tstart` is stamped when the server
//! hands `R` to GCM, the phone auto-computes `T` (confirmation removed),
//! and `tend` is taken after the server computes `P`;
//! `latency = tend − tstart`, 100 trials per network condition.
//! [`run_latency_trials`] reproduces that procedure over a calibrated
//! [`NetProfile`].

use crate::config::{NetProfile, SystemConfig};
use crate::error::SystemError;
use crate::system::AmnesiaSystem;
use amnesia_core::{Domain, PasswordPolicy, Username};
use amnesia_phone::ConfirmPolicy;

/// Summary statistics over a set of latency samples.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyStats {
    /// Profile name ("wifi", "4g").
    pub profile: String,
    /// Per-trial latencies in milliseconds, in trial order.
    pub samples_ms: Vec<f64>,
    /// Sample mean (the paper's x̄).
    pub mean_ms: f64,
    /// Sample standard deviation (the paper's σ, n−1 denominator).
    pub std_ms: f64,
}

impl LatencyStats {
    fn from_samples(profile: String, samples_ms: Vec<f64>) -> Self {
        let n = samples_ms.len().max(1) as f64;
        let mean = samples_ms.iter().sum::<f64>() / n;
        let var = if samples_ms.len() > 1 {
            samples_ms.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        LatencyStats {
            profile,
            samples_ms,
            mean_ms: mean,
            std_ms: var.sqrt(),
        }
    }

    /// Smallest sample.
    pub fn min_ms(&self) -> f64 {
        self.samples_ms
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest sample.
    pub fn max_ms(&self) -> f64 {
        self.samples_ms.iter().copied().fold(0.0, f64::max)
    }

    /// A crude text histogram (for the `fig3_latency` binary).
    pub fn histogram(&self, buckets: usize) -> Vec<(f64, f64, usize)> {
        if self.samples_ms.is_empty() || buckets == 0 {
            return Vec::new();
        }
        let lo = self.min_ms();
        let hi = self.max_ms() + f64::EPSILON;
        let width = (hi - lo) / buckets as f64;
        let mut counts = vec![0usize; buckets];
        for &s in &self.samples_ms {
            let idx = (((s - lo) / width) as usize).min(buckets - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(i, c)| (lo + i as f64 * width, lo + (i + 1) as f64 * width, c))
            .collect()
    }
}

/// Runs `trials` end-to-end password generations over `profile` with the
/// phone in auto-confirm mode and returns the measured latency statistics.
///
/// # Errors
///
/// Propagates any flow failure (none are expected in this controlled
/// experiment).
pub fn run_latency_trials(
    profile: NetProfile,
    trials: usize,
    seed: u64,
) -> Result<LatencyStats, SystemError> {
    let name = profile.name.clone();
    let mut system = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(seed)
            .with_profile(profile),
    );
    system.add_browser("browser");
    system.add_phone("phone", seed.wrapping_add(1));
    system.setup_user("tester", "master password", "browser", "phone")?;
    system
        .phone_mut("phone")
        .ok_or(SystemError::UnknownComponent {
            endpoint: "phone".into(),
        })?
        .set_confirm_policy(ConfirmPolicy::AutoConfirm);

    let username = Username::new("tester")?;
    let domain = Domain::new("latency.example.com")?;
    system.add_account(
        "browser",
        username.clone(),
        domain.clone(),
        PasswordPolicy::default(),
    )?;

    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let outcome = system.generate_password("browser", "phone", &username, &domain)?;
        samples.push(outcome.latency.as_millis_f64());
    }
    Ok(LatencyStats::from_samples(name, samples))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wifi_trials_match_paper_statistics() {
        // Paper: x̄ = 785.3 ms, σ = 171.5 ms over 100 trials. With 100
        // stochastic samples the tolerance is generous; the bench binary
        // reports exact values.
        let stats = run_latency_trials(NetProfile::wifi(), 100, 42).unwrap();
        assert_eq!(stats.samples_ms.len(), 100);
        assert!(
            (stats.mean_ms - 785.3).abs() < 60.0,
            "mean {}",
            stats.mean_ms
        );
        assert!((stats.std_ms - 171.5).abs() < 60.0, "std {}", stats.std_ms);
    }

    #[test]
    fn cellular_trials_match_paper_statistics() {
        let stats = run_latency_trials(NetProfile::cellular_4g(), 100, 43).unwrap();
        assert!(
            (stats.mean_ms - 978.7).abs() < 55.0,
            "mean {}",
            stats.mean_ms
        );
        assert!((stats.std_ms - 137.9).abs() < 55.0, "std {}", stats.std_ms);
    }

    #[test]
    fn wifi_is_faster_than_4g_in_measurement() {
        let wifi = run_latency_trials(NetProfile::wifi(), 60, 7).unwrap();
        let cell = run_latency_trials(NetProfile::cellular_4g(), 60, 7).unwrap();
        assert!(wifi.mean_ms < cell.mean_ms);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_latency_trials(NetProfile::wifi(), 10, 5).unwrap();
        let b = run_latency_trials(NetProfile::wifi(), 10, 5).unwrap();
        assert_eq!(a.samples_ms, b.samples_ms);
        let c = run_latency_trials(NetProfile::wifi(), 10, 6).unwrap();
        assert_ne!(a.samples_ms, c.samples_ms);
    }

    #[test]
    fn histogram_partitions_all_samples() {
        let stats = run_latency_trials(NetProfile::wifi(), 50, 8).unwrap();
        let hist = stats.histogram(8);
        assert_eq!(hist.iter().map(|(_, _, c)| c).sum::<usize>(), 50);
    }

    #[test]
    fn stats_handle_degenerate_inputs() {
        let s = LatencyStats::from_samples("x".into(), vec![5.0]);
        assert_eq!(s.mean_ms, 5.0);
        assert_eq!(s.std_ms, 0.0);
        assert!(s.histogram(0).is_empty());
    }
}
