//! The wired-up Amnesia deployment (paper Figure 1).
//!
//! This crate assembles every component — [`Browser`](amnesia_client::Browser)
//! on the user's computer, the [`AmnesiaServer`](amnesia_server::AmnesiaServer),
//! the [`RendezvousServer`](amnesia_rendezvous::RendezvousServer) (GCM), the
//! [`AmnesiaPhone`](amnesia_phone::AmnesiaPhone), and a
//! [`CloudProvider`](amnesia_cloud::CloudProvider) — over the simulated
//! network of `amnesia-net`, and drives the six-step protocol:
//!
//! 1. browser forwards the account's `(µ, d)` to the server;
//! 2. the server derives `R` and
//! 3. pushes it to the phone through the rendezvous;
//! 4. the phone (after user confirmation) computes `T` and sends it
//!    directly to the server;
//! 5. the server combines `T` with `Ks` into the password and
//! 6. returns it to the browser for autofill.
//!
//! [`NetProfile`] carries the calibrated per-leg latency models for the
//! paper's Wifi and 4G conditions; [`latency::run_latency_trials`]
//! regenerates Figure 3. Channel encryption between browser↔server and
//! phone↔server reproduces the HTTPS protections of §II; the rendezvous
//! legs carry the push in the clear *relative to the rendezvous*, which is
//! exactly the §IV-B eavesdropping surface.
//!
//! # Example
//!
//! ```
//! use amnesia_system::{AmnesiaSystem, SystemConfig};
//! use amnesia_core::{Domain, PasswordPolicy, Username};
//!
//! let mut system = AmnesiaSystem::new(SystemConfig::default());
//! system.add_browser("browser-1");
//! system.add_phone("phone-1", 42);
//!
//! system.setup_user("alice", "master password", "browser-1", "phone-1")?;
//! let u = Username::new("Alice")?;
//! let d = Domain::new("mail.google.com")?;
//! system.add_account("browser-1", u.clone(), d.clone(), PasswordPolicy::default())?;
//!
//! let outcome = system.generate_password("browser-1", "phone-1", &u, &d)?;
//! assert_eq!(outcome.password.as_str().len(), 32);
//! // Same request later ⇒ same password: nothing is stored anywhere.
//! let again = system.generate_password("browser-1", "phone-1", &u, &d)?;
//! assert_eq!(outcome.password, again.password);
//! # Ok::<(), amnesia_system::SystemError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod error;
pub mod latency;
pub mod realtime;
pub mod session;
mod system;

pub use config::{NetProfile, SystemConfig};
pub use error::SystemError;
pub use session::{Action, Event, FlowSpec, Origin, Session, SessionId, SessionOutcome};
pub use system::{
    AmnesiaSystem, GenerationOutcome, GenerationRequest, RecoveryOutcome, GCM_ENDPOINT,
    SERVER_ENDPOINT,
};
