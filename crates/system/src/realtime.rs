//! Real-threads runtime mode.
//!
//! The paper's prototype was a *threaded* deployment — CherryPy with a
//! 10-thread pool on EC2, a GCM service, and an Android app all running
//! concurrently. The simulated network ([`SimNet`](amnesia_net::SimNet))
//! makes experiments deterministic, but it never proves the components are
//! actually safe to run concurrently. This module does: each component runs
//! on its own OS thread, frames travel over `std::sync::mpsc` channels
//! (senders are cloned wherever several components feed one inbox; every
//! receiver has exactly one consumer), and the six-step protocol executes
//! with genuine parallelism.
//!
//! Latency here is real compute latency (microseconds), not modelled
//! network latency — use the simulated deployment for Figure 3.
//!
//! # Example
//!
//! ```
//! use amnesia_system::realtime::RealtimeDeployment;
//!
//! let mut rt = RealtimeDeployment::start(7);
//! rt.setup_user("alice", "master password").unwrap();
//! rt.add_account("alice-acct", "mail.google.com").unwrap();
//! let (password, elapsed) = rt.generate("alice-acct", "mail.google.com").unwrap();
//! assert_eq!(password.len(), 32);
//! assert!(elapsed.as_secs() < 5);
//! rt.shutdown();
//! ```

use amnesia_core::{Domain, PasswordPolicy, Username};
use amnesia_net::SimInstant;
use amnesia_phone::{AmnesiaPhone, ConfirmPolicy, PhoneConfig, PushOutcome};
use amnesia_rendezvous::{PushEnvelope, RegistrationId};
use amnesia_server::protocol::{FromServer, ToServer};
use amnesia_server::{AmnesiaServer, ServerConfig, SessionToken};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors from the threaded deployment.
#[derive(Debug)]
#[non_exhaustive]
pub enum RealtimeError {
    /// A component thread hung up.
    Disconnected,
    /// The server replied with an error message.
    ServerRejected(String),
    /// A reply arrived out of protocol.
    UnexpectedReply(String),
    /// No reply arrived within the timeout.
    Timeout,
}

impl std::fmt::Display for RealtimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealtimeError::Disconnected => write!(f, "component thread disconnected"),
            RealtimeError::ServerRejected(m) => write!(f, "server rejected: {m}"),
            RealtimeError::UnexpectedReply(m) => write!(f, "unexpected reply: {m}"),
            RealtimeError::Timeout => write!(f, "timed out waiting for a reply"),
        }
    }
}

impl std::error::Error for RealtimeError {}

/// Messages entering the server thread.
enum ServerInbound {
    FromBrowser(ToServer),
    FromPhone(ToServer),
    Shutdown,
}

/// Messages entering the rendezvous thread.
enum GcmInbound {
    Register(RegistrationId, Sender<Vec<u8>>),
    Push(PushEnvelope),
    Shutdown,
}

/// A full Amnesia deployment on real threads: server, rendezvous and phone
/// each own a thread; the caller plays the browser. See the module docs.
pub struct RealtimeDeployment {
    to_server: Sender<ServerInbound>,
    to_gcm: Sender<GcmInbound>,
    user_to_phone: Sender<Vec<u8>>,
    browser_rx: Receiver<FromServer>,
    session: Option<SessionToken>,
    handles: Vec<JoinHandle<()>>,
    timeout: Duration,
}

impl RealtimeDeployment {
    /// Spawns the component threads and pairs the phone (registration +
    /// CAPTCHA pairing happen during [`setup_user`](Self::setup_user)).
    pub fn start(seed: u64) -> Self {
        let (to_server, server_rx) = channel::<ServerInbound>();
        let (to_gcm, gcm_rx) = channel::<GcmInbound>();
        let (browser_tx, browser_rx) = channel::<FromServer>();
        let (phone_tx, phone_rx) = channel::<Vec<u8>>();
        // Direct user-to-phone line: the user physically types the pairing
        // captcha on the device, bypassing the rendezvous.
        let user_to_phone = phone_tx.clone();

        // --- rendezvous thread: registration-ID → phone channel routing ----
        let gcm_handle = std::thread::spawn(move || {
            let mut registry: HashMap<RegistrationId, Sender<Vec<u8>>> = HashMap::new();
            while let Ok(message) = gcm_rx.recv() {
                match message {
                    GcmInbound::Register(id, tx) => {
                        registry.insert(id, tx);
                    }
                    GcmInbound::Push(envelope) => {
                        if let Some(tx) = registry.get(&envelope.registration_id) {
                            // A dead phone is dropped traffic, like GCM.
                            let _ = tx.send(envelope.data);
                        }
                    }
                    GcmInbound::Shutdown => break,
                }
            }
        });

        // --- server thread --------------------------------------------------
        let server_to_gcm = to_gcm.clone();
        let server_browser_tx = browser_tx;
        let server_handle = std::thread::spawn(move || {
            let mut server = AmnesiaServer::new(ServerConfig {
                endpoint: "amnesia-server".into(),
                seed,
                pbkdf2_iterations: 1,
            });
            while let Ok(inbound) = server_rx.recv() {
                let message = match inbound {
                    ServerInbound::FromBrowser(m) | ServerInbound::FromPhone(m) => m,
                    ServerInbound::Shutdown => break,
                };
                // Real time stands in for the simulated clock; latency
                // numbers from this mode are compute-only.
                let reaction = server.handle_message(message, SimInstant::EPOCH);
                if let Some(push) = reaction.push {
                    let _ = server_to_gcm.send(GcmInbound::Push(push));
                }
                for (_dest, reply) in reaction.replies {
                    // Single-browser deployment: every reply goes to the
                    // caller.
                    let _ = server_browser_tx.send(reply);
                }
            }
        });

        // --- phone thread ----------------------------------------------------
        let phone_to_server = to_server.clone();
        let phone_to_gcm = to_gcm.clone();
        let phone_handle = std::thread::spawn(move || {
            let mut phone = AmnesiaPhone::new(
                PhoneConfig::new("phone", seed.wrapping_add(1)).with_table_size(512),
            );
            phone.set_confirm_policy(ConfirmPolicy::AutoConfirm);

            // Register with the rendezvous: mint the ID locally (the thread
            // owns no RendezvousServer; the registry lives in the gcm
            // thread).
            let mut gcm_stub = amnesia_rendezvous::RendezvousServer::new("gcm", seed ^ 0xF00D);
            let registration_id = phone.register_with_rendezvous(&mut gcm_stub);
            let _ = phone_to_gcm.send(GcmInbound::Register(registration_id.clone(), phone_tx));

            // Announce pairing material to the server thread out-of-band:
            // the browser flow supplies the captcha; the phone waits for it
            // as its first "push" (a tiny in-band bootstrap protocol).
            // Format: first message on phone_rx that is valid UTF-8 of the
            // form "pair:<user>:<captcha>" triggers pairing.
            while let Ok(payload) = phone_rx.recv() {
                if let Ok(text) = std::str::from_utf8(&payload) {
                    if let Some(rest) = text.strip_prefix("pair:") {
                        if let Some((user, captcha)) = rest.split_once(':') {
                            let _ = phone_to_server.send(ServerInbound::FromPhone(
                                ToServer::CompletePhonePairing {
                                    user_id: user.to_string(),
                                    captcha: captcha.to_string(),
                                    pid: phone.pid().clone(),
                                    registration_id: registration_id.clone(),
                                    reply_to: "browser".into(),
                                },
                            ));
                            continue;
                        }
                    }
                }
                // Ordinary password-request push.
                if let Ok(PushOutcome::Respond(response)) =
                    phone.handle_push(&payload, SimInstant::EPOCH)
                {
                    let _ =
                        phone_to_server.send(ServerInbound::FromPhone(ToServer::Token(response)));
                }
            }
        });

        RealtimeDeployment {
            to_server,
            to_gcm,
            user_to_phone,
            browser_rx,
            session: None,
            handles: vec![gcm_handle, server_handle, phone_handle],
            timeout: Duration::from_secs(5),
        }
    }

    fn recv_reply(&self) -> Result<FromServer, RealtimeError> {
        self.browser_rx
            .recv_timeout(self.timeout)
            .map_err(|_| RealtimeError::Timeout)
    }

    fn send_browser(&self, message: ToServer) -> Result<(), RealtimeError> {
        self.to_server
            .send(ServerInbound::FromBrowser(message))
            .map_err(|_| RealtimeError::Disconnected)
    }

    fn expect<T>(
        &self,
        what: &'static str,
        extract: impl Fn(FromServer) -> Result<T, FromServer>,
    ) -> Result<T, RealtimeError> {
        // Skip intermediate acks (RequestPushed) while hunting the target.
        for _ in 0..8 {
            match self.recv_reply()? {
                FromServer::Error { message } => {
                    return Err(RealtimeError::ServerRejected(message))
                }
                reply => match extract(reply) {
                    Ok(value) => return Ok(value),
                    Err(FromServer::RequestPushed) => continue,
                    Err(other) => {
                        return Err(RealtimeError::UnexpectedReply(format!(
                            "waiting for {what}, got {other:?}"
                        )))
                    }
                },
            }
        }
        Err(RealtimeError::Timeout)
    }

    /// Registers the user, logs in, and completes phone pairing across the
    /// live threads.
    ///
    /// # Errors
    ///
    /// Propagates server rejections and channel failures.
    pub fn setup_user(
        &mut self,
        user_id: &str,
        master_password: &str,
    ) -> Result<(), RealtimeError> {
        self.send_browser(ToServer::Register {
            user_id: user_id.into(),
            master_password: master_password.into(),
            reply_to: "browser".into(),
        })?;
        self.expect("Registered", |r| match r {
            FromServer::Registered => Ok(()),
            other => Err(other),
        })?;

        self.send_browser(ToServer::Login {
            user_id: user_id.into(),
            master_password: master_password.into(),
            reply_to: "browser".into(),
        })?;
        let session = self.expect("LoginOk", |r| match r {
            FromServer::LoginOk { session } => Ok(session),
            other => Err(other),
        })?;
        self.session = Some(session.clone());

        self.send_browser(ToServer::BeginPhonePairing {
            session,
            reply_to: "browser".into(),
        })?;
        let captcha = self.expect("PairingChallenge", |r| match r {
            FromServer::PairingChallenge { captcha } => Ok(captcha),
            other => Err(other),
        })?;

        // Hand the captcha to the phone thread directly — the user types it
        // on the device (Fig. 2a).
        self.user_to_phone
            .send(format!("pair:{user_id}:{captcha}").into_bytes())
            .map_err(|_| RealtimeError::Disconnected)?;
        self.expect("PhonePaired", |r| match r {
            FromServer::PhonePaired => Ok(()),
            other => Err(other),
        })
    }

    /// Adds a managed account over the live threads.
    ///
    /// # Errors
    ///
    /// Propagates server rejections and channel failures.
    pub fn add_account(&self, username: &str, domain: &str) -> Result<(), RealtimeError> {
        let session = self.session.clone().ok_or(RealtimeError::Disconnected)?;
        self.send_browser(ToServer::AddAccount {
            session,
            username: Username::new(username).expect("valid username"),
            domain: Domain::new(domain).expect("valid domain"),
            policy: PasswordPolicy::default(),
            reply_to: "browser".into(),
        })?;
        self.expect("AccountAdded", |r| match r {
            FromServer::AccountAdded => Ok(()),
            other => Err(other),
        })
    }

    /// Runs the six-step generation across the threads and returns the
    /// password with the wall-clock time it took.
    ///
    /// # Errors
    ///
    /// Propagates server rejections and channel failures.
    pub fn generate(
        &self,
        username: &str,
        domain: &str,
    ) -> Result<(String, Duration), RealtimeError> {
        let session = self.session.clone().ok_or(RealtimeError::Disconnected)?;
        let start = Instant::now();
        self.send_browser(ToServer::RequestPassword {
            session,
            username: Username::new(username).expect("valid username"),
            domain: Domain::new(domain).expect("valid domain"),
            reply_to: "browser".into(),
        })?;
        let password = self.expect("PasswordReady", |r| match r {
            FromServer::PasswordReady { password, .. } => Ok(password),
            other => Err(other),
        })?;
        Ok((password.as_str().to_string(), start.elapsed()))
    }

    /// Stops the component threads and joins them.
    pub fn shutdown(self) {
        let _ = self.to_server.send(ServerInbound::Shutdown);
        let _ = self.to_gcm.send(GcmInbound::Shutdown);
        // The phone thread exits when every sender onto its channel is gone:
        // ours here, and the registry copy inside the (now stopping) gcm
        // thread. Drop ours before joining or the join deadlocks.
        let RealtimeDeployment {
            to_server,
            to_gcm,
            user_to_phone,
            browser_rx,
            mut handles,
            ..
        } = self;
        drop(user_to_phone);
        drop(to_server);
        drop(to_gcm);
        drop(browser_rx);
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_generation_end_to_end() {
        let mut rt = RealtimeDeployment::start(100);
        rt.setup_user("alice", "mp").unwrap();
        rt.add_account("alice", "threads.example.com").unwrap();
        let (p1, elapsed) = rt.generate("alice", "threads.example.com").unwrap();
        assert_eq!(p1.len(), 32);
        assert!(elapsed < Duration::from_secs(5));
        // Regeneration across live threads is deterministic.
        let (p2, _) = rt.generate("alice", "threads.example.com").unwrap();
        assert_eq!(p1, p2);
        rt.shutdown();
    }

    #[test]
    fn same_seed_same_password_across_deployments() {
        let run = |seed: u64| {
            let mut rt = RealtimeDeployment::start(seed);
            rt.setup_user("bob", "mp").unwrap();
            rt.add_account("bob", "x.example.com").unwrap();
            let (p, _) = rt.generate("bob", "x.example.com").unwrap();
            rt.shutdown();
            p
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn wrong_master_password_rejected_across_threads() {
        let mut rt = RealtimeDeployment::start(9);
        rt.setup_user("carol", "mp").unwrap();
        // A second login attempt with the wrong password errors.
        rt.send_browser(ToServer::Login {
            user_id: "carol".into(),
            master_password: "wrong".into(),
            reply_to: "browser".into(),
        })
        .unwrap();
        let err = rt
            .expect("LoginOk", |r| match r {
                FromServer::LoginOk { session } => Ok(session),
                other => Err(other),
            })
            .unwrap_err();
        assert!(matches!(err, RealtimeError::ServerRejected(_)));
        rt.shutdown();
    }

    #[test]
    fn shutdown_joins_cleanly_without_activity() {
        let rt = RealtimeDeployment::start(10);
        rt.shutdown(); // must not deadlock
    }
}
