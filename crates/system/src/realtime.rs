//! Real-threads runtime mode.
//!
//! The paper's prototype was a *threaded* deployment — CherryPy with a
//! 10-thread pool on EC2, a GCM service, and an Android app all running
//! concurrently. The simulated network ([`SimNet`](amnesia_net::SimNet))
//! makes experiments deterministic, but it never proves the components are
//! actually safe to run concurrently. This module does: each component runs
//! on its own OS thread, frames travel over `std::sync::mpsc` channels
//! (senders are cloned wherever several components feed one inbox; every
//! receiver has exactly one consumer), and the six-step protocol executes
//! with genuine parallelism.
//!
//! The protocol logic is not duplicated here: the host drives the same
//! sans-IO [`Session`] engine as the simulated deployment, executing its
//! [`Action`]s against channels instead of a [`SimNet`](amnesia_net::SimNet)
//! and feeding it [`Event`]s as replies arrive — every reply carries the
//! session's `request_id`, so stale frames from earlier flows are discarded
//! rather than misinterpreted.
//!
//! Latency here is real compute latency (microseconds), not modelled
//! network latency — use the simulated deployment for Figure 3.
//!
//! # Example
//!
//! ```
//! use amnesia_system::realtime::RealtimeDeployment;
//!
//! let mut rt = RealtimeDeployment::start(7);
//! rt.setup_user("alice", "master password").unwrap();
//! rt.add_account("alice-acct", "mail.google.com").unwrap();
//! let (password, elapsed) = rt.generate("alice-acct", "mail.google.com").unwrap();
//! assert_eq!(password.len(), 32);
//! assert!(elapsed.as_secs() < 5);
//! rt.shutdown();
//! ```

use crate::error::SystemError;
use crate::session::{Action, Event, FlowSpec, Origin, Session, SessionId, SessionOutcome};
use amnesia_client::Browser;
use amnesia_core::{Domain, PasswordPolicy, PhoneId, Username};
use amnesia_crypto::KdfPolicy;
use amnesia_net::SimInstant;
use amnesia_phone::{AmnesiaPhone, ConfirmPolicy, PhoneConfig, PushOutcome};
use amnesia_rendezvous::{PushEnvelope, RegistrationId};
use amnesia_server::protocol::{Reply, ToServer};
use amnesia_server::{AmnesiaServer, ServerConfig};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Errors from the threaded deployment — the same type the simulated
/// deployment raises, so callers handle one error surface regardless of
/// runtime.
pub type RealtimeError = SystemError;

/// Seeds and sizing for a threaded deployment.
///
/// [`RealtimeDeployment::start`] derives all of these from one seed; use
/// [`start_with`](RealtimeDeployment::start_with) to pin them individually —
/// e.g. to mirror a simulated deployment component-for-component (same
/// server seed, same phone seed, same table size) and check both runtimes
/// derive byte-identical passwords.
#[derive(Clone, Debug)]
pub struct RealtimeConfig {
    /// Seed for the server's `Ks` derivations.
    pub server_seed: u64,
    /// Seed for the phone's `Kp` (entry-table) generation.
    pub phone_seed: u64,
    /// Entry-table size `N`.
    pub table_size: usize,
    /// KDF hardness rung for the server's stored verifiers.
    pub kdf_policy: KdfPolicy,
}

/// Messages entering the server thread.
enum ServerInbound {
    FromBrowser(ToServer),
    FromPhone(ToServer),
    Shutdown,
}

/// Messages entering the rendezvous thread.
enum GcmInbound {
    Register(RegistrationId, Sender<Vec<u8>>),
    Push(PushEnvelope),
    Shutdown,
}

/// A full Amnesia deployment on real threads: server, rendezvous and phone
/// each own a thread; the caller plays the browser by driving the shared
/// [`Session`] engine. See the module docs.
pub struct RealtimeDeployment {
    to_server: Sender<ServerInbound>,
    to_gcm: Sender<GcmInbound>,
    browser_rx: Receiver<Reply>,
    browser: Browser,
    /// Identity the phone thread announced after registering; fed to the
    /// engine when a pairing flow asks for `RegisterPhone`.
    phone_identity: Option<(PhoneId, RegistrationId)>,
    next_request_id: SessionId,
    handles: Vec<JoinHandle<()>>,
    timeout: Duration,
}

impl RealtimeDeployment {
    /// Spawns the component threads, deriving the per-component seeds from
    /// one deployment seed.
    pub fn start(seed: u64) -> Self {
        Self::start_with(RealtimeConfig {
            server_seed: seed,
            phone_seed: seed.wrapping_add(1),
            table_size: 512,
            kdf_policy: KdfPolicy::PAPER,
        })
    }

    /// Spawns the component threads with explicit per-component seeds.
    pub fn start_with(config: RealtimeConfig) -> Self {
        let (to_server, server_rx) = channel::<ServerInbound>();
        let (to_gcm, gcm_rx) = channel::<GcmInbound>();
        let (browser_tx, browser_rx) = channel::<Reply>();
        let (phone_tx, phone_rx) = channel::<Vec<u8>>();
        let (identity_tx, identity_rx) = channel::<(PhoneId, RegistrationId)>();

        // --- rendezvous thread: registration-ID → phone channel routing ----
        let gcm_handle = std::thread::spawn(move || {
            let mut registry: BTreeMap<RegistrationId, Sender<Vec<u8>>> = BTreeMap::new();
            while let Ok(message) = gcm_rx.recv() {
                match message {
                    GcmInbound::Register(id, tx) => {
                        registry.insert(id, tx);
                    }
                    GcmInbound::Push(envelope) => {
                        if let Some(tx) = registry.get(&envelope.registration_id) {
                            // A dead phone is dropped traffic, like GCM.
                            let _ = tx.send(envelope.data);
                        }
                    }
                    GcmInbound::Shutdown => break,
                }
            }
        });

        // --- server thread --------------------------------------------------
        let server_to_gcm = to_gcm.clone();
        let server_browser_tx = browser_tx;
        let server_seed = config.server_seed;
        let server_kdf_policy = config.kdf_policy;
        let server_handle = std::thread::spawn(move || {
            let mut server = AmnesiaServer::new(ServerConfig {
                endpoint: "amnesia-server".into(),
                seed: server_seed,
                kdf_policy: server_kdf_policy,
            });
            while let Ok(inbound) = server_rx.recv() {
                let message = match inbound {
                    ServerInbound::FromBrowser(m) | ServerInbound::FromPhone(m) => m,
                    ServerInbound::Shutdown => break,
                };
                // Real time stands in for the simulated clock; latency
                // numbers from this mode are compute-only.
                let reaction = server.handle_message(message, SimInstant::EPOCH);
                if let Some(push) = reaction.push {
                    let _ = server_to_gcm.send(GcmInbound::Push(push));
                }
                for (_dest, reply) in reaction.replies {
                    // Single-browser deployment: every reply goes to the
                    // caller, which routes by the echoed request_id.
                    let _ = server_browser_tx.send(reply);
                }
            }
        });

        // --- phone thread ----------------------------------------------------
        let phone_to_server = to_server.clone();
        let phone_to_gcm = to_gcm.clone();
        let phone_seed = config.phone_seed;
        let table_size = config.table_size;
        let phone_handle = std::thread::spawn(move || {
            let mut phone = AmnesiaPhone::new(
                PhoneConfig::new("phone", phone_seed).with_table_size(table_size),
            );
            phone.set_confirm_policy(ConfirmPolicy::AutoConfirm);

            // Register with the rendezvous: mint the ID locally (the thread
            // owns no RendezvousServer; the registry lives in the gcm
            // thread), then announce the identity so the host's pairing
            // flow can complete `RegisterPhone`.
            let mut gcm_stub =
                amnesia_rendezvous::RendezvousServer::new("gcm", phone_seed ^ 0xF00D);
            let registration_id = phone.register_with_rendezvous(&mut gcm_stub);
            let _ = phone_to_gcm.send(GcmInbound::Register(registration_id.clone(), phone_tx));
            let _ = identity_tx.send((phone.pid().clone(), registration_id));

            // Password-request pushes auto-confirm into tokens.
            while let Ok(payload) = phone_rx.recv() {
                if let Ok(PushOutcome::Respond(response)) =
                    phone.handle_push(&payload, SimInstant::EPOCH)
                {
                    let _ =
                        phone_to_server.send(ServerInbound::FromPhone(ToServer::Token(response)));
                }
            }
        });

        let phone_identity = identity_rx.recv_timeout(Duration::from_secs(5)).ok();

        RealtimeDeployment {
            to_server,
            to_gcm,
            browser_rx,
            browser: Browser::new("browser"),
            phone_identity,
            next_request_id: 1,
            handles: vec![gcm_handle, server_handle, phone_handle],
            timeout: Duration::from_secs(5),
        }
    }

    /// Runs one engine session to completion over the live threads.
    fn run_session(&mut self, spec: FlowSpec) -> Result<SessionOutcome, RealtimeError> {
        let sid = self.next_request_id;
        self.next_request_id += 1;
        let mut engine = Session::new(sid, "browser", spec);
        if let Some(token) = self.browser.session().cloned() {
            engine = engine.with_auth(token);
        }
        let mut pending = engine.start();
        let mut deadline = Instant::now() + self.timeout;
        loop {
            // Execute the engine's actions against the channel fabric.
            for action in std::mem::take(&mut pending) {
                match action {
                    Action::Send { origin, message } => {
                        let inbound = match origin {
                            Origin::Browser => ServerInbound::FromBrowser(message),
                            Origin::Phone => ServerInbound::FromPhone(message),
                        };
                        self.to_server
                            .send(inbound)
                            .map_err(|_| SystemError::Disconnected)?;
                    }
                    Action::ArmTimer(duration) => {
                        // Simulated timeout budget, spent in real time.
                        deadline = Instant::now() + Duration::from_micros(duration.as_micros());
                    }
                    // The phone thread runs AutoConfirm: no user to wait on.
                    Action::ExpectUserConfirm => {}
                    Action::RegisterPhone { .. } => {
                        let (pid, registration_id) = self
                            .phone_identity
                            .clone()
                            .ok_or(SystemError::Disconnected)?;
                        let followup = engine.on_event(Event::PairingInfo {
                            pid,
                            registration_id,
                        });
                        pending.extend(followup);
                    }
                    // No cloud provider rides along in the threaded mode;
                    // backup is exercised by the simulated deployment.
                    Action::BackupPhoneToCloud => {}
                    Action::NoteRetry => {}
                    Action::Deliver(outcome) => return Ok(outcome),
                    Action::Fail(error) => return Err(error),
                    // Recovery/grant flows are not exposed over threads.
                    Action::FetchBackup | Action::InstallPhone | Action::MintGrant { .. } => {
                        return Err(SystemError::MissingReply {
                            expected: "realtime flow support",
                        })
                    }
                }
            }
            if !pending.is_empty() {
                continue;
            }

            // Wait for the next frame addressed to this session.
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.browser_rx.recv_timeout(remaining) {
                Ok(reply) => {
                    if reply.request_id != sid {
                        // A stale reply from an abandoned session.
                        continue;
                    }
                    self.browser.handle_reply(reply.message.clone());
                    pending = engine.on_event(Event::FrameReceived(reply.message));
                }
                Err(RecvTimeoutError::Timeout) => {
                    pending = engine.on_event(Event::TimerFired);
                }
                Err(RecvTimeoutError::Disconnected) => return Err(SystemError::Disconnected),
            }
        }
    }

    /// Registers the user, logs in, and completes phone pairing across the
    /// live threads.
    ///
    /// # Errors
    ///
    /// Propagates server rejections and channel failures.
    pub fn setup_user(
        &mut self,
        user_id: &str,
        master_password: &str,
    ) -> Result<(), RealtimeError> {
        match self.run_session(FlowSpec::Setup {
            user_id: user_id.into(),
            master_password: master_password.into(),
        })? {
            SessionOutcome::SetupDone => Ok(()),
            _ => Err(SystemError::MissingReply {
                expected: "SetupDone",
            }),
        }
    }

    /// Logs the caller's browser in (again) over the live threads.
    ///
    /// # Errors
    ///
    /// Propagates server rejections and channel failures.
    pub fn login(&mut self, user_id: &str, master_password: &str) -> Result<(), RealtimeError> {
        match self.run_session(FlowSpec::Login {
            user_id: user_id.into(),
            master_password: master_password.into(),
        })? {
            SessionOutcome::LoggedIn => Ok(()),
            _ => Err(SystemError::MissingReply {
                expected: "LoginOk",
            }),
        }
    }

    /// Adds a managed account over the live threads.
    ///
    /// # Errors
    ///
    /// Propagates server rejections and channel failures.
    pub fn add_account(&mut self, username: &str, domain: &str) -> Result<(), RealtimeError> {
        match self.run_session(FlowSpec::AddAccount {
            username: Username::new(username).map_err(SystemError::Core)?,
            domain: Domain::new(domain).map_err(SystemError::Core)?,
            policy: PasswordPolicy::default(),
        })? {
            SessionOutcome::AccountAdded => Ok(()),
            _ => Err(SystemError::MissingReply {
                expected: "AccountAdded",
            }),
        }
    }

    /// Runs the six-step generation across the threads and returns the
    /// password with the wall-clock time it took.
    ///
    /// # Errors
    ///
    /// Propagates server rejections and channel failures.
    pub fn generate(
        &mut self,
        username: &str,
        domain: &str,
    ) -> Result<(String, Duration), RealtimeError> {
        let start = Instant::now();
        match self.run_session(FlowSpec::Generate {
            username: Username::new(username).map_err(SystemError::Core)?,
            domain: Domain::new(domain).map_err(SystemError::Core)?,
        })? {
            SessionOutcome::Password { password, .. } => {
                Ok((password.as_str().to_string(), start.elapsed()))
            }
            _ => Err(SystemError::MissingReply {
                expected: "PasswordReady",
            }),
        }
    }

    /// Stops the component threads and joins them.
    pub fn shutdown(self) {
        let _ = self.to_server.send(ServerInbound::Shutdown);
        let _ = self.to_gcm.send(GcmInbound::Shutdown);
        // The phone thread exits when every sender onto its channel is gone;
        // the only live one sits in the (now stopping) gcm thread's
        // registry. Drop our channel ends before joining to avoid deadlock.
        let RealtimeDeployment {
            to_server,
            to_gcm,
            browser_rx,
            mut handles,
            ..
        } = self;
        drop(to_server);
        drop(to_gcm);
        drop(browser_rx);
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_generation_end_to_end() {
        let mut rt = RealtimeDeployment::start(100);
        rt.setup_user("alice", "mp").unwrap();
        rt.add_account("alice", "threads.example.com").unwrap();
        let (p1, elapsed) = rt.generate("alice", "threads.example.com").unwrap();
        assert_eq!(p1.len(), 32);
        assert!(elapsed < Duration::from_secs(5));
        // Regeneration across live threads is deterministic.
        let (p2, _) = rt.generate("alice", "threads.example.com").unwrap();
        assert_eq!(p1, p2);
        rt.shutdown();
    }

    #[test]
    fn same_seed_same_password_across_deployments() {
        let run = |seed: u64| {
            let mut rt = RealtimeDeployment::start(seed);
            rt.setup_user("bob", "mp").unwrap();
            rt.add_account("bob", "x.example.com").unwrap();
            let (p, _) = rt.generate("bob", "x.example.com").unwrap();
            rt.shutdown();
            p
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn wrong_master_password_rejected_across_threads() {
        let mut rt = RealtimeDeployment::start(9);
        rt.setup_user("carol", "mp").unwrap();
        // A second login attempt with the wrong password errors.
        let err = rt.login("carol", "wrong").unwrap_err();
        assert!(matches!(err, SystemError::ServerRejected { .. }));
        rt.shutdown();
    }

    #[test]
    fn explicit_config_controls_every_seed() {
        let run = |config: RealtimeConfig| {
            let mut rt = RealtimeDeployment::start_with(config);
            rt.setup_user("dana", "mp").unwrap();
            rt.add_account("dana", "cfg.example.com").unwrap();
            let (p, _) = rt.generate("dana", "cfg.example.com").unwrap();
            rt.shutdown();
            p
        };
        let base = RealtimeConfig {
            server_seed: 41,
            phone_seed: 42,
            table_size: 64,
            kdf_policy: KdfPolicy::PAPER,
        };
        assert_eq!(run(base.clone()), run(base.clone()));
        // Changing either secret-bearing seed changes the password.
        assert_ne!(
            run(base.clone()),
            run(RealtimeConfig {
                server_seed: 43,
                ..base.clone()
            })
        );
        assert_ne!(
            run(base.clone()),
            run(RealtimeConfig {
                phone_seed: 43,
                ..base
            })
        );
    }

    #[test]
    fn shutdown_joins_cleanly_without_activity() {
        let rt = RealtimeDeployment::start(10);
        rt.shutdown(); // must not deadlock
    }
}
