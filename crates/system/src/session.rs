//! The sans-IO protocol session engine.
//!
//! Every user-visible flow — the six-step generation protocol of Figure 1,
//! the vault-store extension, account setup with phone pairing, and the two
//! §III-C recovery protocols — is encoded **once** here as an explicit state
//! machine. The engine performs no I/O: hosts feed it typed [`Event`]s
//! (frames off the wire, user confirmations, timer expiry, push loss) and
//! execute the [`Action`]s it emits (send a frame, arm a timer, deliver the
//! outcome). Both deployments host the same machine:
//!
//! * `AmnesiaSystem` runs sessions over the simulated network, keyed by
//!   [`SessionId`] in a session table, which is what lets hundreds of
//!   generations interleave in one sim run;
//! * `RealtimeDeployment` runs the identical machine over OS threads and
//!   mpsc channels, so the two deployments cannot drift apart.
//!
//! The session id doubles as the wire-level `request_id`: every `ToServer`
//! message the engine emits carries it, and every server reply echoes it in
//! the [`Reply`](amnesia_server::protocol::Reply) envelope, which is how a
//! host routes a frame back to the one session that is waiting for it.
//!
//! Retries are bounded and built in: a push flow re-sends its request (same
//! `request_id`, so the server simply replaces the pending entry) on
//! [`Event::TimerFired`] or [`Event::PushDropped`] until its attempt budget
//! is exhausted, then fails with the typed
//! [`SystemError::MissingReply`](crate::SystemError) naming the reply it
//! never got.

use crate::error::SystemError;
use amnesia_client::BrowserError;
use amnesia_core::{Domain, GeneratedPassword, PasswordPolicy, PhoneId, Username};
use amnesia_net::{SimDuration, SimInstant};
use amnesia_rendezvous::RegistrationId;
use amnesia_server::protocol::{FromServer, KpBackup, SessionGrantToken, ToServer};
use amnesia_server::storage::{AccountRef, RecoveredCredential};
use amnesia_server::SessionToken;
use std::fmt;

/// Correlates one protocol session across frames, timers and hosts; also
/// used verbatim as the wire-level `request_id`.
pub type SessionId = u64;

/// Which local agent a [`Action::Send`] frame leaves from. The server
/// treats phone-originated messages differently only in that replies route
/// back over the phone's channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// The user's browser endpoint.
    Browser,
    /// The user's phone endpoint.
    Phone,
}

/// What the user asked this session to accomplish.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum FlowSpec {
    /// The six-step generation flow of Figure 1.
    Generate {
        /// Account username `µ`.
        username: Username,
        /// Account domain `d`.
        domain: Domain,
    },
    /// Vault extension (§VIII): seal and store a user-chosen password.
    StoreChosen {
        /// Account username `µ`.
        username: Username,
        /// Account domain `d`.
        domain: Domain,
        /// The password to seal.
        chosen_password: String,
    },
    /// Register, log in, pair the phone, and back `Kp` up to the cloud.
    Setup {
        /// New Amnesia user id.
        user_id: String,
        /// Master password `MP`.
        master_password: String,
    },
    /// Plain login, capturing the session token.
    Login {
        /// Amnesia user id.
        user_id: String,
        /// Master password `MP`.
        master_password: String,
    },
    /// Add a managed account `(µ, d)`.
    AddAccount {
        /// Account username `µ`.
        username: Username,
        /// Account domain `d`.
        domain: Domain,
        /// Rendering policy for generated passwords.
        policy: PasswordPolicy,
    },
    /// List the user's managed accounts.
    ListAccounts,
    /// Rotate one account's seed `σ` (the paper's password change).
    RotateSeed {
        /// Account username `µ`.
        username: Username,
        /// Account domain `d`.
        domain: Domain,
    },
    /// Session-mechanism extension (§VIII): enable auto-confirmed
    /// generations.
    GrantSession {
        /// Amnesia user id the grant is installed for.
        user_id: String,
        /// Auto-confirm budget.
        max_uses: u32,
    },
    /// Phone-compromise recovery (§III-C1): upload the cloud backup, regain
    /// the old passwords, and pair a fresh phone.
    Recover {
        /// Amnesia user id.
        user_id: String,
        /// Master password `MP`.
        master_password: String,
    },
    /// Master-password-compromise recovery (§III-C2), proved with the
    /// phone's `Pid`.
    ChangeMasterPassword {
        /// Amnesia user id.
        user_id: String,
        /// The (compromised) current master password.
        old_master_password: String,
        /// The replacement master password.
        new_master_password: String,
        /// The phone id proving phone possession.
        pid: PhoneId,
    },
}

/// What a completed session hands back to the caller.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SessionOutcome {
    /// A generated (or vault-opened) password arrived.
    Password {
        /// The account it belongs to.
        account: AccountRef,
        /// The password itself.
        password: GeneratedPassword,
        /// Server-side `tstart` — the start of the §VI-B latency window.
        requested_at: SimInstant,
    },
    /// The chosen password was sealed and stored.
    Stored {
        /// The vaulted account.
        account: AccountRef,
    },
    /// Setup (register → login → pair → backup) completed.
    SetupDone,
    /// Login succeeded; the token is readable via [`Session::auth`].
    LoggedIn,
    /// The account was added.
    AccountAdded,
    /// The account listing.
    Accounts(Vec<AccountRef>),
    /// The seed was rotated.
    SeedRotated,
    /// The session grant is active server-side.
    Granted {
        /// Uses installed.
        remaining_uses: u32,
    },
    /// Phone recovery completed; old passwords recovered and a fresh phone
    /// paired.
    Recovered {
        /// The credentials regenerated from the uploaded backup.
        credentials: Vec<RecoveredCredential>,
    },
    /// The master password was changed.
    MasterPasswordChanged,
}

/// Inputs a host feeds into [`Session::on_event`].
#[derive(Debug)]
#[non_exhaustive]
pub enum Event {
    /// A server reply addressed to this session arrived.
    FrameReceived(FromServer),
    /// The user approved the pending confirmation for this session.
    UserConfirmed,
    /// The timer armed by the last [`Action::ArmTimer`] expired.
    TimerFired,
    /// The host observed the session's push being dropped in transit.
    PushDropped,
    /// [`Action::FetchBackup`] completed with the downloaded backup.
    BackupFetched(KpBackup),
    /// [`Action::InstallPhone`] completed; a fresh phone exists.
    PhoneInstalled,
    /// [`Action::RegisterPhone`] completed: the phone registered with the
    /// rendezvous and reports its identity for `CompletePhonePairing`.
    PairingInfo {
        /// The phone's `Pid`.
        pid: PhoneId,
        /// The rendezvous registration id.
        registration_id: RegistrationId,
    },
    /// [`Action::MintGrant`] completed with the phone-minted grant token.
    GrantMinted(SessionGrantToken),
}

/// Instructions the engine hands back for the host to execute.
#[derive(Debug)]
#[non_exhaustive]
pub enum Action {
    /// Transmit `message` to the server from the given local agent.
    Send {
        /// Which agent the frame leaves from.
        origin: Origin,
        /// The protocol message (already carrying this session's id).
        message: ToServer,
    },
    /// (Re-)arm this session's timeout; fire [`Event::TimerFired`] if no
    /// relevant event arrives within the duration.
    ArmTimer(SimDuration),
    /// Surface the pending push to the user and feed
    /// [`Event::UserConfirmed`] when they approve (auto-confirm policies
    /// may do so immediately).
    ExpectUserConfirm,
    /// Register the phone with the rendezvous service and reply with
    /// [`Event::PairingInfo`]. In hosts where the phone drives pairing
    /// itself, hand it `captcha` and let the resulting `PhonePaired` frame
    /// advance the session instead.
    RegisterPhone {
        /// The CAPTCHA the user "types into" the phone.
        captcha: String,
    },
    /// Download the user's `Kp` backup and reply with
    /// [`Event::BackupFetched`].
    FetchBackup,
    /// Install a fresh phone (new `Kp`) and reply with
    /// [`Event::PhoneInstalled`].
    InstallPhone,
    /// Ask the phone to mint a session grant and reply with
    /// [`Event::GrantMinted`].
    MintGrant {
        /// Auto-confirm budget to mint.
        max_uses: u32,
    },
    /// Back the phone's `Kp` up to the cloud provider (§III-C1's one-time
    /// backup).
    BackupPhoneToCloud,
    /// The session is re-sending after a timeout/drop; hosts count these.
    NoteRetry,
    /// The flow completed; hand the outcome to the caller.
    Deliver(SessionOutcome),
    /// The flow failed terminally.
    Fail(SystemError),
}

/// Where the machine currently is. One state per awaited reply keeps the
/// transition table auditable against Figure 1.
#[derive(Clone, Debug, PartialEq, Eq)]
enum State {
    Idle,
    AwaitRegistered,
    AwaitLoginOk { then: AfterLogin },
    AwaitPairingChallenge,
    AwaitPaired,
    AwaitPushAck,
    AwaitPassword,
    AwaitStored,
    AwaitBackup,
    AwaitRecovered,
    AwaitPhoneInstalled,
    AwaitGrantMinted,
    AwaitGranted,
    AwaitSimpleReply { expected: &'static str },
    Done,
    Failed,
}

/// What a successful login leads into.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AfterLogin {
    DeliverLoggedIn,
    BeginPairing,
}

impl State {
    /// The reply name a timeout in this state reports via
    /// [`SystemError::MissingReply`].
    fn expected_reply(&self) -> &'static str {
        match self {
            State::Idle => "start",
            State::AwaitRegistered => "Registered",
            State::AwaitLoginOk { .. } => "LoginOk",
            State::AwaitPairingChallenge => "PairingChallenge",
            State::AwaitPaired => "PhonePaired",
            State::AwaitPushAck => "RequestPushed",
            State::AwaitPassword => "PasswordReady",
            State::AwaitStored => "ChosenPasswordStored",
            State::AwaitBackup => "BackupFetched",
            State::AwaitRecovered => "PhoneRecovered",
            State::AwaitPhoneInstalled => "PhoneInstalled",
            State::AwaitGrantMinted => "GrantMinted",
            State::AwaitGranted => "SessionGranted",
            State::AwaitSimpleReply { expected } => expected,
            State::Done | State::Failed => "nothing",
        }
    }
}

/// Default per-session timeout: comfortably above the 4G push path's
/// worst-case leg sum, far below a stuck run.
pub const DEFAULT_TIMEOUT: SimDuration = SimDuration::from_micros(5_000_000);

/// One in-flight protocol session (the sans-IO state machine).
pub struct Session {
    id: SessionId,
    reply_to: String,
    spec: FlowSpec,
    auth: Option<SessionToken>,
    state: State,
    attempts_left: u32,
    timeout: SimDuration,
    captcha: Option<String>,
    credentials: Vec<RecoveredCredential>,
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("attempts_left", &self.attempts_left)
            .finish_non_exhaustive()
    }
}

impl Session {
    /// Creates a session; call [`start`](Self::start) to obtain the first
    /// actions. `reply_to` is the browser endpoint replies are addressed
    /// to; `id` doubles as the wire `request_id`.
    pub fn new(id: SessionId, reply_to: impl Into<String>, spec: FlowSpec) -> Self {
        Session {
            id,
            reply_to: reply_to.into(),
            spec,
            auth: None,
            state: State::Idle,
            attempts_left: 0,
            timeout: DEFAULT_TIMEOUT,
            captcha: None,
            credentials: Vec::new(),
        }
    }

    /// Supplies an existing login token (required before flows that send
    /// authenticated messages).
    pub fn with_auth(mut self, auth: SessionToken) -> Self {
        self.auth = Some(auth);
        self
    }

    /// Allows up to `attempts` transmissions (1 = no retry) for the push
    /// flows; other flows ignore the budget.
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts_left = attempts.saturating_sub(1);
        self
    }

    /// Overrides the per-session timeout armed with every send.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// The session id (== wire `request_id`).
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The login token, once captured from `LoginOk` (or supplied).
    pub fn auth(&self) -> Option<&SessionToken> {
        self.auth.as_ref()
    }

    /// Whether the session reached `Done` or `Failed`.
    pub fn is_terminal(&self) -> bool {
        matches!(self.state, State::Done | State::Failed)
    }

    /// Whether the session is a push flow — i.e. currently exposed to push
    /// loss and therefore interested in [`Event::PushDropped`].
    pub fn awaits_push(&self) -> bool {
        matches!(
            self.state,
            State::AwaitPushAck | State::AwaitPassword | State::AwaitStored
        )
    }

    /// The reply a timeout right now would report as missing.
    pub fn expected_reply(&self) -> &'static str {
        self.state.expected_reply()
    }

    /// Kicks the flow off, returning the first actions to execute.
    pub fn start(&mut self) -> Vec<Action> {
        debug_assert_eq!(self.state, State::Idle, "start() is one-shot");
        match self.spec.clone() {
            FlowSpec::Generate { .. } | FlowSpec::StoreChosen { .. } => {
                match self.push_request_message() {
                    Ok(message) => {
                        self.state = State::AwaitPushAck;
                        vec![
                            Action::Send {
                                origin: Origin::Browser,
                                message,
                            },
                            Action::ArmTimer(self.timeout),
                        ]
                    }
                    Err(e) => self.fail(e),
                }
            }
            FlowSpec::Setup {
                user_id,
                master_password,
            } => {
                self.state = State::AwaitRegistered;
                vec![
                    self.send_browser(ToServer::Register {
                        user_id,
                        master_password,
                        request_id: self.id,
                        reply_to: self.reply_to.clone(),
                    }),
                    Action::ArmTimer(self.timeout),
                ]
            }
            FlowSpec::Login {
                user_id,
                master_password,
            } => {
                self.state = State::AwaitLoginOk {
                    then: AfterLogin::DeliverLoggedIn,
                };
                vec![
                    self.send_browser(ToServer::Login {
                        user_id,
                        master_password,
                        request_id: self.id,
                        reply_to: self.reply_to.clone(),
                    }),
                    Action::ArmTimer(self.timeout),
                ]
            }
            FlowSpec::AddAccount {
                username,
                domain,
                policy,
            } => match self.require_auth() {
                Ok(session) => {
                    self.state = State::AwaitSimpleReply {
                        expected: "AccountAdded",
                    };
                    vec![
                        self.send_browser(ToServer::AddAccount {
                            session,
                            username,
                            domain,
                            policy,
                            request_id: self.id,
                            reply_to: self.reply_to.clone(),
                        }),
                        Action::ArmTimer(self.timeout),
                    ]
                }
                Err(e) => self.fail(e),
            },
            FlowSpec::ListAccounts => match self.require_auth() {
                Ok(session) => {
                    self.state = State::AwaitSimpleReply {
                        expected: "Accounts",
                    };
                    vec![
                        self.send_browser(ToServer::ListAccounts {
                            session,
                            request_id: self.id,
                            reply_to: self.reply_to.clone(),
                        }),
                        Action::ArmTimer(self.timeout),
                    ]
                }
                Err(e) => self.fail(e),
            },
            FlowSpec::RotateSeed { username, domain } => match self.require_auth() {
                Ok(session) => {
                    self.state = State::AwaitSimpleReply {
                        expected: "SeedRotated",
                    };
                    vec![
                        self.send_browser(ToServer::RotateSeed {
                            session,
                            username,
                            domain,
                            request_id: self.id,
                            reply_to: self.reply_to.clone(),
                        }),
                        Action::ArmTimer(self.timeout),
                    ]
                }
                Err(e) => self.fail(e),
            },
            FlowSpec::GrantSession { max_uses, .. } => {
                self.state = State::AwaitGrantMinted;
                vec![
                    Action::MintGrant { max_uses },
                    Action::ArmTimer(self.timeout),
                ]
            }
            FlowSpec::Recover { .. } => {
                self.state = State::AwaitBackup;
                vec![Action::FetchBackup, Action::ArmTimer(self.timeout)]
            }
            FlowSpec::ChangeMasterPassword {
                user_id,
                old_master_password,
                new_master_password,
                pid,
            } => {
                self.state = State::AwaitSimpleReply {
                    expected: "MasterPasswordChanged",
                };
                vec![
                    Action::Send {
                        origin: Origin::Phone,
                        message: ToServer::ChangeMasterPassword {
                            user_id,
                            old_master_password,
                            pid,
                            new_master_password,
                            request_id: self.id,
                            reply_to: self.reply_to.clone(),
                        },
                    },
                    Action::ArmTimer(self.timeout),
                ]
            }
        }
    }

    /// Advances the machine with one event, returning actions to execute.
    /// Events that do not apply in the current state are ignored (sans-IO
    /// machines must tolerate stale timers and crossed frames).
    pub fn on_event(&mut self, event: Event) -> Vec<Action> {
        if self.is_terminal() {
            return Vec::new();
        }
        match event {
            Event::FrameReceived(frame) => self.on_frame(frame),
            Event::UserConfirmed => Vec::new(),
            Event::TimerFired | Event::PushDropped => self.on_lost_progress(),
            Event::BackupFetched(backup) => self.on_backup_fetched(backup),
            Event::PhoneInstalled => self.on_phone_installed(),
            Event::PairingInfo {
                pid,
                registration_id,
            } => self.on_pairing_info(pid, registration_id),
            Event::GrantMinted(grant) => self.on_grant_minted(grant),
        }
    }

    // -- transitions ---------------------------------------------------------

    fn on_frame(&mut self, frame: FromServer) -> Vec<Action> {
        if let FromServer::Error { message } = frame {
            return self.fail(SystemError::ServerRejected { message });
        }
        match (&self.state, frame) {
            (State::AwaitRegistered, FromServer::Registered) => {
                let FlowSpec::Setup {
                    user_id,
                    master_password,
                } = self.spec.clone()
                else {
                    return self.fail(SystemError::MissingReply { expected: "Setup" });
                };
                self.state = State::AwaitLoginOk {
                    then: AfterLogin::BeginPairing,
                };
                vec![
                    self.send_browser(ToServer::Login {
                        user_id,
                        master_password,
                        request_id: self.id,
                        reply_to: self.reply_to.clone(),
                    }),
                    Action::ArmTimer(self.timeout),
                ]
            }
            (State::AwaitLoginOk { then }, FromServer::LoginOk { session }) => {
                let then = *then;
                self.auth = Some(session.clone());
                match then {
                    AfterLogin::DeliverLoggedIn => self.deliver(SessionOutcome::LoggedIn),
                    AfterLogin::BeginPairing => {
                        self.state = State::AwaitPairingChallenge;
                        vec![
                            self.send_browser(ToServer::BeginPhonePairing {
                                session,
                                request_id: self.id,
                                reply_to: self.reply_to.clone(),
                            }),
                            Action::ArmTimer(self.timeout),
                        ]
                    }
                }
            }
            (State::AwaitPairingChallenge, FromServer::PairingChallenge { captcha }) => {
                self.captcha = Some(captcha.clone());
                self.state = State::AwaitPaired;
                vec![
                    Action::RegisterPhone { captcha },
                    Action::ArmTimer(self.timeout),
                ]
            }
            (State::AwaitPaired, FromServer::PhonePaired) => {
                let outcome = match &self.spec {
                    FlowSpec::Recover { .. } => SessionOutcome::Recovered {
                        credentials: std::mem::take(&mut self.credentials),
                    },
                    _ => SessionOutcome::SetupDone,
                };
                let mut actions = vec![Action::BackupPhoneToCloud];
                actions.extend(self.deliver(outcome));
                actions
            }
            (State::AwaitPushAck, FromServer::RequestPushed) => {
                self.state = match self.spec {
                    FlowSpec::StoreChosen { .. } => State::AwaitStored,
                    _ => State::AwaitPassword,
                };
                vec![Action::ExpectUserConfirm, Action::ArmTimer(self.timeout)]
            }
            // Non-FIFO links can deliver the terminal reply before the
            // RequestPushed ack it logically follows (the phone confirmed
            // without the browser's ack, e.g. auto-confirm). The ack is then
            // redundant: resolve directly instead of waiting for a frame
            // that no longer matters.
            (
                State::AwaitPushAck,
                FromServer::PasswordReady {
                    account,
                    password,
                    requested_at,
                },
            ) => self.deliver(SessionOutcome::Password {
                account,
                password,
                requested_at,
            }),
            (State::AwaitPushAck, FromServer::ChosenPasswordStored { account }) => {
                self.deliver(SessionOutcome::Stored { account })
            }
            (
                State::AwaitPassword,
                FromServer::PasswordReady {
                    account,
                    password,
                    requested_at,
                },
            ) => self.deliver(SessionOutcome::Password {
                account,
                password,
                requested_at,
            }),
            (State::AwaitStored, FromServer::ChosenPasswordStored { account }) => {
                self.deliver(SessionOutcome::Stored { account })
            }
            (State::AwaitRecovered, FromServer::PhoneRecovered { credentials }) => {
                self.credentials = credentials;
                self.state = State::AwaitPhoneInstalled;
                vec![Action::InstallPhone, Action::ArmTimer(self.timeout)]
            }
            (State::AwaitGranted, FromServer::SessionGranted { remaining_uses }) => {
                self.deliver(SessionOutcome::Granted { remaining_uses })
            }
            (State::AwaitSimpleReply { expected }, frame) => match (*expected, frame) {
                ("AccountAdded", FromServer::AccountAdded) => {
                    self.deliver(SessionOutcome::AccountAdded)
                }
                ("Accounts", FromServer::Accounts { accounts }) => {
                    self.deliver(SessionOutcome::Accounts(accounts))
                }
                ("SeedRotated", FromServer::SeedRotated) => {
                    self.deliver(SessionOutcome::SeedRotated)
                }
                ("MasterPasswordChanged", FromServer::MasterPasswordChanged) => {
                    self.deliver(SessionOutcome::MasterPasswordChanged)
                }
                _ => Vec::new(),
            },
            // Any other (state, frame) pairing is a stale or crossed reply.
            _ => Vec::new(),
        }
    }

    /// A timer fired or the push was observed dropped: retry if the budget
    /// allows, otherwise fail with the missing reply's name.
    fn on_lost_progress(&mut self) -> Vec<Action> {
        let retryable = self.awaits_push();
        if retryable && self.attempts_left > 0 {
            self.attempts_left -= 1;
            match self.push_request_message() {
                Ok(message) => {
                    self.state = State::AwaitPushAck;
                    vec![
                        Action::NoteRetry,
                        Action::Send {
                            origin: Origin::Browser,
                            message,
                        },
                        Action::ArmTimer(self.timeout),
                    ]
                }
                Err(e) => self.fail(e),
            }
        } else {
            let expected = self.state.expected_reply();
            self.fail(SystemError::MissingReply { expected })
        }
    }

    fn on_backup_fetched(&mut self, backup: KpBackup) -> Vec<Action> {
        if self.state != State::AwaitBackup {
            return Vec::new();
        }
        let FlowSpec::Recover {
            user_id,
            master_password,
        } = self.spec.clone()
        else {
            return Vec::new();
        };
        self.state = State::AwaitRecovered;
        vec![
            self.send_browser(ToServer::RecoverPhone {
                user_id,
                master_password,
                backup,
                request_id: self.id,
                reply_to: self.reply_to.clone(),
            }),
            Action::ArmTimer(self.timeout),
        ]
    }

    fn on_phone_installed(&mut self) -> Vec<Action> {
        if self.state != State::AwaitPhoneInstalled {
            return Vec::new();
        }
        let FlowSpec::Recover {
            user_id,
            master_password,
        } = self.spec.clone()
        else {
            return Vec::new();
        };
        self.state = State::AwaitLoginOk {
            then: AfterLogin::BeginPairing,
        };
        vec![
            self.send_browser(ToServer::Login {
                user_id,
                master_password,
                request_id: self.id,
                reply_to: self.reply_to.clone(),
            }),
            Action::ArmTimer(self.timeout),
        ]
    }

    fn on_pairing_info(&mut self, pid: PhoneId, registration_id: RegistrationId) -> Vec<Action> {
        if self.state != State::AwaitPaired {
            return Vec::new();
        }
        let user_id = match &self.spec {
            FlowSpec::Setup { user_id, .. } | FlowSpec::Recover { user_id, .. } => user_id.clone(),
            _ => return Vec::new(),
        };
        let Some(captcha) = self.captcha.clone() else {
            return Vec::new();
        };
        vec![
            Action::Send {
                origin: Origin::Phone,
                message: ToServer::CompletePhonePairing {
                    user_id,
                    captcha,
                    pid,
                    registration_id,
                    request_id: self.id,
                    reply_to: self.reply_to.clone(),
                },
            },
            Action::ArmTimer(self.timeout),
        ]
    }

    fn on_grant_minted(&mut self, grant: SessionGrantToken) -> Vec<Action> {
        if self.state != State::AwaitGrantMinted {
            return Vec::new();
        }
        let FlowSpec::GrantSession { user_id, max_uses } = self.spec.clone() else {
            return Vec::new();
        };
        self.state = State::AwaitGranted;
        vec![
            Action::Send {
                origin: Origin::Phone,
                message: ToServer::SessionGrant {
                    user_id,
                    grant,
                    max_uses,
                    request_id: self.id,
                    reply_to: self.reply_to.clone(),
                },
            },
            Action::ArmTimer(self.timeout),
        ]
    }

    // -- helpers -------------------------------------------------------------

    /// The (re-)sendable request opening a push flow.
    fn push_request_message(&self) -> Result<ToServer, SystemError> {
        let session = self.require_auth()?;
        match self.spec.clone() {
            FlowSpec::Generate { username, domain } => Ok(ToServer::RequestPassword {
                session,
                username,
                domain,
                request_id: self.id,
                reply_to: self.reply_to.clone(),
            }),
            FlowSpec::StoreChosen {
                username,
                domain,
                chosen_password,
            } => Ok(ToServer::StoreChosenPassword {
                session,
                username,
                domain,
                chosen_password,
                request_id: self.id,
                reply_to: self.reply_to.clone(),
            }),
            _ => Err(SystemError::MissingReply {
                expected: "push flow",
            }),
        }
    }

    fn require_auth(&self) -> Result<SessionToken, SystemError> {
        self.auth
            .clone()
            .ok_or(SystemError::Browser(BrowserError::NotLoggedIn))
    }

    fn send_browser(&self, message: ToServer) -> Action {
        Action::Send {
            origin: Origin::Browser,
            message,
        }
    }

    fn deliver(&mut self, outcome: SessionOutcome) -> Vec<Action> {
        self.state = State::Done;
        vec![Action::Deliver(outcome)]
    }

    fn fail(&mut self, error: SystemError) -> Vec<Action> {
        self.state = State::Failed;
        vec![Action::Fail(error)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use amnesia_server::{AmnesiaServer, ServerConfig};

    fn account() -> (Username, Domain) {
        (
            Username::new("alice").unwrap(),
            Domain::new("example.com").unwrap(),
        )
    }

    fn auth_token() -> SessionToken {
        let mut server = AmnesiaServer::new(ServerConfig::default());
        server.register_user("alice", "mp").unwrap();
        server.login("alice", "mp").unwrap()
    }

    fn generate_session(id: SessionId, attempts: u32) -> Session {
        let (username, domain) = account();
        Session::new(id, "browser", FlowSpec::Generate { username, domain })
            .with_auth(auth_token())
            .with_attempts(attempts)
    }

    fn sample_account_ref() -> AccountRef {
        let (username, domain) = account();
        AccountRef { username, domain }
    }

    fn sample_password() -> GeneratedPassword {
        PasswordPolicy::default().render(&[3u8; 64])
    }

    #[test]
    fn generate_happy_path_emits_figure_one_sequence() {
        let mut s = generate_session(7, 1);
        let actions = s.start();
        assert!(matches!(
            &actions[..],
            [
                Action::Send {
                    origin: Origin::Browser,
                    message: ToServer::RequestPassword { request_id: 7, .. }
                },
                Action::ArmTimer(_)
            ]
        ));

        let actions = s.on_event(Event::FrameReceived(FromServer::RequestPushed));
        assert!(matches!(
            &actions[..],
            [Action::ExpectUserConfirm, Action::ArmTimer(_)]
        ));
        assert!(s.awaits_push());

        let actions = s.on_event(Event::FrameReceived(FromServer::PasswordReady {
            account: sample_account_ref(),
            password: sample_password(),
            requested_at: SimInstant::EPOCH,
        }));
        assert!(matches!(
            &actions[..],
            [Action::Deliver(SessionOutcome::Password { .. })]
        ));
        assert!(s.is_terminal());
    }

    #[test]
    fn password_ready_overtaking_push_ack_resolves_the_session() {
        // Non-FIFO delivery: the terminal reply lands before the
        // RequestPushed ack. The session must resolve, and the stale ack
        // must then be inert.
        let mut s = generate_session(8, 1);
        s.start();
        let actions = s.on_event(Event::FrameReceived(FromServer::PasswordReady {
            account: sample_account_ref(),
            password: sample_password(),
            requested_at: SimInstant::EPOCH,
        }));
        assert!(matches!(
            &actions[..],
            [Action::Deliver(SessionOutcome::Password { .. })]
        ));
        assert!(s.is_terminal());
        assert!(s
            .on_event(Event::FrameReceived(FromServer::RequestPushed))
            .is_empty());
    }

    #[test]
    fn stored_ack_overtaking_push_ack_resolves_the_session() {
        let (username, domain) = account();
        let mut s = Session::new(
            9,
            "browser",
            FlowSpec::StoreChosen {
                username,
                domain,
                chosen_password: "chosen-password".into(),
            },
        )
        .with_auth(auth_token());
        s.start();
        let actions = s.on_event(Event::FrameReceived(FromServer::ChosenPasswordStored {
            account: sample_account_ref(),
        }));
        assert!(matches!(
            &actions[..],
            [Action::Deliver(SessionOutcome::Stored { .. })]
        ));
        assert!(s.is_terminal());
    }

    #[test]
    fn retry_budget_resends_then_fails_with_missing_reply() {
        let mut s = generate_session(1, 3);
        s.start();
        s.on_event(Event::FrameReceived(FromServer::RequestPushed));

        // Two drops consume the two retries, each re-sending the request.
        for _ in 0..2 {
            let actions = s.on_event(Event::PushDropped);
            assert!(matches!(
                &actions[..],
                [
                    Action::NoteRetry,
                    Action::Send {
                        message: ToServer::RequestPassword { request_id: 1, .. },
                        ..
                    },
                    Action::ArmTimer(_)
                ]
            ));
        }
        // Budget exhausted: the third loss is terminal and names the reply.
        let actions = s.on_event(Event::TimerFired);
        let [Action::Fail(SystemError::MissingReply { expected })] = &actions[..] else {
            panic!("expected Fail, got {actions:?}");
        };
        assert_eq!(*expected, "RequestPushed");
        assert!(s.is_terminal());
    }

    #[test]
    fn timeout_while_awaiting_password_names_password_ready() {
        let mut s = generate_session(2, 1);
        s.start();
        s.on_event(Event::FrameReceived(FromServer::RequestPushed));
        let actions = s.on_event(Event::TimerFired);
        let [Action::Fail(SystemError::MissingReply { expected })] = &actions[..] else {
            panic!("expected Fail, got {actions:?}");
        };
        assert_eq!(*expected, "PasswordReady");
    }

    #[test]
    fn server_error_fails_session() {
        let mut s = generate_session(3, 5);
        s.start();
        let actions = s.on_event(Event::FrameReceived(FromServer::Error {
            message: "no phone paired".into(),
        }));
        assert!(matches!(
            &actions[..],
            [Action::Fail(SystemError::ServerRejected { .. })]
        ));
        // Terminal: further events are inert even with retry budget left.
        assert!(s.on_event(Event::TimerFired).is_empty());
    }

    #[test]
    fn generate_without_auth_fails_immediately() {
        let (username, domain) = account();
        let mut s = Session::new(4, "browser", FlowSpec::Generate { username, domain });
        let actions = s.start();
        assert!(matches!(
            &actions[..],
            [Action::Fail(SystemError::Browser(
                BrowserError::NotLoggedIn
            ))]
        ));
    }

    #[test]
    fn stale_frames_are_ignored() {
        let mut s = generate_session(5, 1);
        s.start();
        // PasswordReady before the push ack is a crossed frame, not progress.
        let actions = s.on_event(Event::FrameReceived(FromServer::PhonePaired));
        assert!(actions.is_empty());
        assert!(!s.is_terminal());
    }

    #[test]
    fn setup_flow_walks_register_login_pair_backup() {
        let mut s = Session::new(
            9,
            "browser",
            FlowSpec::Setup {
                user_id: "alice".into(),
                master_password: "mp".into(),
            },
        );
        assert!(matches!(
            &s.start()[..],
            [
                Action::Send {
                    message: ToServer::Register { .. },
                    ..
                },
                Action::ArmTimer(_)
            ]
        ));
        assert!(matches!(
            &s.on_event(Event::FrameReceived(FromServer::Registered))[..],
            [
                Action::Send {
                    message: ToServer::Login { .. },
                    ..
                },
                Action::ArmTimer(_)
            ]
        ));
        let login_ok = FromServer::LoginOk {
            session: auth_token(),
        };
        assert!(matches!(
            &s.on_event(Event::FrameReceived(login_ok))[..],
            [
                Action::Send {
                    message: ToServer::BeginPhonePairing { .. },
                    ..
                },
                Action::ArmTimer(_)
            ]
        ));
        assert!(s.auth().is_some(), "LoginOk captures the token");
        assert!(matches!(
            &s.on_event(Event::FrameReceived(FromServer::PairingChallenge {
                captcha: "123456".into()
            }))[..],
            [Action::RegisterPhone { .. }, Action::ArmTimer(_)]
        ));
        // Sim-style hosts answer with PairingInfo → CompletePhonePairing.
        let mut rng = amnesia_crypto::SecretRng::seeded(4);
        let pid = PhoneId::random(&mut rng);
        let reg = amnesia_rendezvous::RendezvousServer::new("gcm", 5).register_device("phone");
        let actions = s.on_event(Event::PairingInfo {
            pid,
            registration_id: reg,
        });
        assert!(matches!(
            &actions[..],
            [
                Action::Send {
                    origin: Origin::Phone,
                    message: ToServer::CompletePhonePairing { captcha, .. }
                },
                Action::ArmTimer(_)
            ] if captcha == "123456"
        ));
        let actions = s.on_event(Event::FrameReceived(FromServer::PhonePaired));
        assert!(matches!(
            &actions[..],
            [
                Action::BackupPhoneToCloud,
                Action::Deliver(SessionOutcome::SetupDone)
            ]
        ));
    }

    #[test]
    fn store_chosen_flow_ends_in_stored() {
        let (username, domain) = account();
        let mut s = Session::new(
            11,
            "browser",
            FlowSpec::StoreChosen {
                username,
                domain,
                chosen_password: "hunter2".into(),
            },
        )
        .with_auth(auth_token());
        assert!(matches!(
            &s.start()[..],
            [
                Action::Send {
                    message: ToServer::StoreChosenPassword { .. },
                    ..
                },
                Action::ArmTimer(_)
            ]
        ));
        s.on_event(Event::FrameReceived(FromServer::RequestPushed));
        let actions = s.on_event(Event::FrameReceived(FromServer::ChosenPasswordStored {
            account: sample_account_ref(),
        }));
        assert!(matches!(
            &actions[..],
            [Action::Deliver(SessionOutcome::Stored { .. })]
        ));
    }

    #[test]
    fn grant_flow_mints_then_announces() {
        let mut s = Session::new(
            13,
            "browser",
            FlowSpec::GrantSession {
                user_id: "alice".into(),
                max_uses: 3,
            },
        );
        assert!(matches!(
            &s.start()[..],
            [Action::MintGrant { max_uses: 3 }, Action::ArmTimer(_)]
        ));
        let actions = s.on_event(Event::GrantMinted(SessionGrantToken(vec![1, 2])));
        assert!(matches!(
            &actions[..],
            [
                Action::Send {
                    origin: Origin::Phone,
                    message: ToServer::SessionGrant { max_uses: 3, .. }
                },
                Action::ArmTimer(_)
            ]
        ));
        let actions = s.on_event(Event::FrameReceived(FromServer::SessionGranted {
            remaining_uses: 3,
        }));
        assert!(matches!(
            &actions[..],
            [Action::Deliver(SessionOutcome::Granted {
                remaining_uses: 3
            })]
        ));
    }

    #[test]
    fn recover_flow_fetches_backup_then_repairs() {
        let mut s = Session::new(
            17,
            "browser",
            FlowSpec::Recover {
                user_id: "alice".into(),
                master_password: "mp".into(),
            },
        );
        assert!(matches!(
            &s.start()[..],
            [Action::FetchBackup, Action::ArmTimer(_)]
        ));
        let mut rng = amnesia_crypto::SecretRng::seeded(5);
        let backup = KpBackup {
            pid: PhoneId::random(&mut rng),
            entries: vec![amnesia_core::EntryValue::random(&mut rng)],
        };
        assert!(matches!(
            &s.on_event(Event::BackupFetched(backup))[..],
            [
                Action::Send {
                    message: ToServer::RecoverPhone { .. },
                    ..
                },
                Action::ArmTimer(_)
            ]
        ));
        let credential = RecoveredCredential {
            username: account().0,
            domain: account().1,
            old_password: sample_password(),
        };
        assert!(matches!(
            &s.on_event(Event::FrameReceived(FromServer::PhoneRecovered {
                credentials: vec![credential]
            }))[..],
            [Action::InstallPhone, Action::ArmTimer(_)]
        ));
        assert!(matches!(
            &s.on_event(Event::PhoneInstalled)[..],
            [
                Action::Send {
                    message: ToServer::Login { .. },
                    ..
                },
                Action::ArmTimer(_)
            ]
        ));
        s.on_event(Event::FrameReceived(FromServer::LoginOk {
            session: auth_token(),
        }));
        s.on_event(Event::FrameReceived(FromServer::PairingChallenge {
            captcha: "000111".into(),
        }));
        let actions = s.on_event(Event::FrameReceived(FromServer::PhonePaired));
        let [Action::BackupPhoneToCloud, Action::Deliver(SessionOutcome::Recovered { credentials })] =
            &actions[..]
        else {
            panic!("expected recovery delivery, got {actions:?}");
        };
        assert_eq!(credentials.len(), 1);
    }
}
