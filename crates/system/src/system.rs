//! The deployment object and its end-to-end flows.

use crate::config::SystemConfig;
use crate::error::SystemError;
use amnesia_client::Browser;
use amnesia_cloud::CloudProvider;
use amnesia_core::{Domain, GeneratedPassword, PasswordPolicy, Username};
use amnesia_crypto::SecretRng;
use amnesia_net::{Frame, LinkProfile, SecureChannel, SimDuration, SimInstant, SimNet};
use amnesia_phone::{AmnesiaPhone, PhoneConfig, PushOutcome};
use amnesia_rendezvous::RendezvousServer;
use amnesia_server::protocol::{FromServer, ToServer};
use amnesia_server::storage::AccountRef;
use amnesia_server::{AmnesiaServer, ServerConfig};
use amnesia_telemetry::Registry;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Endpoint name of the Amnesia server.
pub const SERVER_ENDPOINT: &str = "amnesia-server";
/// Endpoint name of the rendezvous service.
pub const GCM_ENDPOINT: &str = "gcm";

/// Result of one end-to-end password generation.
#[derive(Clone, Debug)]
pub struct GenerationOutcome {
    /// The account the password belongs to.
    pub account: AccountRef,
    /// The generated password, as delivered to the browser.
    pub password: GeneratedPassword,
    /// The paper's measured latency: server `tend` − `tstart`
    /// (push creation to password completion).
    pub latency: SimDuration,
}

/// Result of the phone-compromise recovery flow.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// Old passwords regenerated from the uploaded backup, which the user
    /// must now change on each website.
    pub credentials: Vec<amnesia_server::RecoveredCredential>,
}

/// The assembled deployment. See the crate-level docs and example.
pub struct AmnesiaSystem {
    config: SystemConfig,
    net: SimNet,
    server: AmnesiaServer,
    gcm: RendezvousServer,
    cloud: CloudProvider,
    phones: BTreeMap<String, AmnesiaPhone>,
    browsers: BTreeMap<String, Browser>,
    channels: HashMap<(String, String), SecureChannel>,
    channel_rng: SecretRng,
    generation_latencies: Vec<SimDuration>,
    faults: Vec<String>,
    telemetry: Registry,
}

impl fmt::Debug for AmnesiaSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AmnesiaSystem")
            .field("profile", &self.config.profile.name)
            .field("phones", &self.phones.keys().collect::<Vec<_>>())
            .field("browsers", &self.browsers.keys().collect::<Vec<_>>())
            .field("now", &self.net.now())
            .finish_non_exhaustive()
    }
}

impl AmnesiaSystem {
    /// Builds a deployment with a server, rendezvous service and cloud
    /// provider; add browsers and phones afterwards.
    pub fn new(config: SystemConfig) -> Self {
        let telemetry = Registry::new();
        let mut seed_rng = SecretRng::seeded(config.seed);
        let mut net = SimNet::new(seed_rng.next_u64());
        net.set_telemetry(telemetry.clone());
        net.register(SERVER_ENDPOINT);
        net.register(GCM_ENDPOINT);
        net.connect(
            SERVER_ENDPOINT,
            GCM_ENDPOINT,
            LinkProfile::new(config.profile.server_gcm.clone()),
        );

        let mut server = AmnesiaServer::new(ServerConfig {
            endpoint: SERVER_ENDPOINT.into(),
            seed: seed_rng.next_u64(),
            pbkdf2_iterations: config.pbkdf2_iterations,
        });
        server.set_telemetry(telemetry.clone());
        let mut gcm = RendezvousServer::new(GCM_ENDPOINT, seed_rng.next_u64());
        gcm.set_telemetry(telemetry.clone());
        let channel_rng = seed_rng.fork();

        AmnesiaSystem {
            config,
            net,
            server,
            gcm,
            cloud: CloudProvider::new("sim-cloud"),
            phones: BTreeMap::new(),
            browsers: BTreeMap::new(),
            channels: HashMap::new(),
            channel_rng,
            generation_latencies: Vec::new(),
            faults: Vec::new(),
            telemetry,
        }
    }

    // -- topology -----------------------------------------------------------

    fn provision_channel_pair(&mut self, a: &str, b: &str) {
        // Stand-in for the TLS handshake: both directions keyed from one
        // fresh shared secret.
        let secret = self.channel_rng.bytes::<32>();
        self.channels.insert(
            (a.to_string(), b.to_string()),
            SecureChannel::new(&secret, "fwd"),
        );
        self.channels.insert(
            (b.to_string(), a.to_string()),
            SecureChannel::new(&secret, "rev"),
        );
    }

    /// Adds a browser endpoint connected to the server over the profile's
    /// HTTPS link.
    pub fn add_browser(&mut self, name: &str) {
        self.net.register(name);
        self.net.connect_bidirectional(
            name,
            SERVER_ENDPOINT,
            LinkProfile::new(self.config.profile.browser_server.clone()),
        );
        self.provision_channel_pair(name, SERVER_ENDPOINT);
        self.browsers.insert(name.to_string(), Browser::new(name));
    }

    /// Adds a browser running *on the phone* (paper §III: "The process is
    /// the same for a user using a mobile browser. In this case, the phone
    /// would also take on the role of the PC."): its HTTPS link to the
    /// server uses the phone's access-network latency instead of the
    /// computer's.
    pub fn add_mobile_browser(&mut self, name: &str) {
        self.net.register(name);
        self.net.connect_bidirectional(
            name,
            SERVER_ENDPOINT,
            LinkProfile::new(self.config.profile.phone_server.clone()),
        );
        self.provision_channel_pair(name, SERVER_ENDPOINT);
        self.browsers.insert(name.to_string(), Browser::new(name));
    }

    /// Installs a phone: endpoint, push link from the rendezvous, direct
    /// link to the server, and a protected phone↔server channel.
    pub fn add_phone(&mut self, name: &str, seed: u64) {
        self.net.register(name);
        self.net.connect(
            GCM_ENDPOINT,
            name,
            LinkProfile::new(self.config.profile.gcm_phone.clone())
                .with_drop_probability(self.config.profile.push_drop_probability),
        );
        self.net.connect(
            name,
            SERVER_ENDPOINT,
            LinkProfile::new(self.config.profile.phone_server.clone()),
        );
        self.provision_channel_pair(name, SERVER_ENDPOINT);
        let mut phone =
            AmnesiaPhone::new(PhoneConfig::new(name, seed).with_table_size(self.config.table_size));
        phone.set_telemetry(self.telemetry.clone());
        self.phones.insert(name.to_string(), phone);
    }

    /// Removes a phone component (a lost/stolen device leaving the
    /// deployment). Its network endpoint remains but nothing handles its
    /// frames.
    pub fn remove_phone(&mut self, name: &str) -> Option<AmnesiaPhone> {
        self.phones.remove(name)
    }

    // -- channel plumbing ------------------------------------------------------

    fn seal(&mut self, from: &str, to: &str, bytes: Vec<u8>) -> Vec<u8> {
        if !self.config.secure_channels {
            return bytes;
        }
        match self.channels.get_mut(&(from.to_string(), to.to_string())) {
            Some(channel) => channel.seal(&bytes),
            None => bytes,
        }
    }

    fn open(&mut self, from: &str, to: &str, bytes: &[u8]) -> Result<Vec<u8>, SystemError> {
        if !self.config.secure_channels {
            return Ok(bytes.to_vec());
        }
        match self.channels.get_mut(&(from.to_string(), to.to_string())) {
            Some(channel) => channel.open(bytes).map_err(SystemError::from),
            None => Ok(bytes.to_vec()),
        }
    }

    /// Exports the channel keys for one direction — the §IV-A broken-HTTPS
    /// attack model ("the attacker is somehow able to compromise the
    /// connection").
    pub fn export_channel_keys_for_attack_model(
        &self,
        from: &str,
        to: &str,
    ) -> Option<([u8; 32], [u8; 32])> {
        self.channels
            .get(&(from.to_string(), to.to_string()))
            .map(SecureChannel::export_keys_for_attack_model)
    }

    // -- dispatch ----------------------------------------------------------------

    /// Delivers and dispatches frames until the network is idle.
    ///
    /// Component-level rejections (unknown registrations, malformed pushes,
    /// replayed tokens) are recorded in [`faults`](Self::faults) rather than
    /// aborting the pump — on a real network they are just dropped traffic.
    pub fn pump(&mut self) {
        while let Some(frame) = self.net.step() {
            if let Err(e) = self.dispatch(frame) {
                self.telemetry.counter("system.dispatch_faults").inc();
                self.faults.push(e.to_string());
            }
        }
    }

    /// The frame's time on the wire — the per-leg latency attributed to the
    /// protocol step the frame carries.
    fn leg_micros(frame: &Frame) -> u64 {
        (frame.delivered_at - frame.sent_at).as_micros()
    }

    fn dispatch(&mut self, frame: Frame) -> Result<(), SystemError> {
        let to = frame.to.clone();
        if to == SERVER_ENDPOINT {
            self.dispatch_to_server(frame)
        } else if to == GCM_ENDPOINT {
            // Step 2 leg of Fig. 1: the server's push travelling to the
            // rendezvous service.
            self.telemetry
                .record("steps.step2_server_to_gcm_us", Self::leg_micros(&frame));
            self.gcm
                .handle_frame(&frame, &mut self.net)
                .map(|_| ())
                .map_err(|e| SystemError::ServerRejected {
                    message: format!("rendezvous: {e}"),
                })
        } else if self.phones.contains_key(&to) {
            self.dispatch_to_phone(frame)
        } else if self.browsers.contains_key(&to) {
            self.dispatch_to_browser(frame)
        } else {
            // Endpoint exists but no live component (e.g. removed phone).
            Err(SystemError::UnknownComponent { endpoint: to })
        }
    }

    fn dispatch_to_server(&mut self, frame: Frame) -> Result<(), SystemError> {
        let plaintext = self.open(&frame.from, SERVER_ENDPOINT, &frame.payload)?;
        let message = ToServer::from_wire(&plaintext)?;
        match &message {
            ToServer::RequestPassword { .. } => {
                // Step 1 of Fig. 1: the browser's request reaching the server.
                self.telemetry
                    .record("steps.step1_request_upload_us", Self::leg_micros(&frame));
                self.net.advance(self.config.profile.request_compute);
            }
            ToServer::Token(_) => {
                // Step 4 leg (token upload) and step 5 (password assembly,
                // modelled as the configured compute advance).
                self.telemetry
                    .record("steps.step4_token_upload_us", Self::leg_micros(&frame));
                self.telemetry.record(
                    "steps.step5_password_compute_us",
                    self.config.profile.password_compute.as_micros(),
                );
                self.net.advance(self.config.profile.password_compute);
            }
            _ => {}
        }
        let now = self.net.now();
        let reaction = self.server.handle_message(message, now);
        if let Some(push) = reaction.push {
            self.net
                .send(SERVER_ENDPOINT, GCM_ENDPOINT, push.to_wire()?)?;
        }
        for (dest, reply) in reaction.replies {
            if let FromServer::PasswordReady { requested_at, .. } = &reply {
                let latency = self.net.now().duration_since(*requested_at);
                self.telemetry
                    .record("system.generate_password_us", latency.as_micros());
                self.generation_latencies.push(latency);
            }
            let bytes = reply.to_wire()?;
            let sealed = self.seal(SERVER_ENDPOINT, &dest, bytes);
            self.net.send(SERVER_ENDPOINT, &dest, sealed)?;
        }
        Ok(())
    }

    fn dispatch_to_phone(&mut self, frame: Frame) -> Result<(), SystemError> {
        // Step 3 of Fig. 1: the rendezvous push arriving at the phone.
        self.telemetry
            .record("steps.step3_push_delivery_us", Self::leg_micros(&frame));
        let now = self.net.now();
        let outcome = {
            let phone = self.phones.get_mut(&frame.to).expect("checked by dispatch");
            phone.handle_push(&frame.payload, now)?
        };
        match outcome {
            PushOutcome::Respond(response) => {
                self.net.advance(self.config.profile.token_compute);
                self.send_token_from_phone(&frame.to.clone(), response)?;
            }
            PushOutcome::AwaitingConfirmation | PushOutcome::Rejected => {}
        }
        Ok(())
    }

    fn send_token_from_phone(
        &mut self,
        phone_endpoint: &str,
        response: amnesia_server::protocol::TokenResponse,
    ) -> Result<(), SystemError> {
        let bytes = ToServer::Token(response).to_wire()?;
        let sealed = self.seal(phone_endpoint, SERVER_ENDPOINT, bytes);
        self.net.send(phone_endpoint, SERVER_ENDPOINT, sealed)?;
        Ok(())
    }

    fn dispatch_to_browser(&mut self, frame: Frame) -> Result<(), SystemError> {
        let plaintext = self.open(&frame.from, &frame.to, &frame.payload)?;
        let reply = FromServer::from_wire(&plaintext)?;
        if matches!(reply, FromServer::PasswordReady { .. }) {
            // Step 6 of Fig. 1: the assembled password reaching the browser.
            self.telemetry
                .record("steps.step6_password_download_us", Self::leg_micros(&frame));
        }
        self.browsers
            .get_mut(&frame.to)
            .expect("checked by dispatch")
            .handle_reply(reply);
        Ok(())
    }

    // -- flow helpers --------------------------------------------------------------

    fn browser(&self, name: &str) -> Result<&Browser, SystemError> {
        self.browsers
            .get(name)
            .ok_or_else(|| SystemError::UnknownComponent {
                endpoint: name.into(),
            })
    }

    fn send_from_browser(&mut self, browser: &str, message: ToServer) -> Result<(), SystemError> {
        let bytes = message.to_wire()?;
        let sealed = self.seal(browser, SERVER_ENDPOINT, bytes);
        self.net.send(browser, SERVER_ENDPOINT, sealed)?;
        self.pump();
        Ok(())
    }

    fn take_browser_inbox(&mut self, browser: &str) -> Result<Vec<FromServer>, SystemError> {
        Ok(self
            .browsers
            .get_mut(browser)
            .ok_or_else(|| SystemError::UnknownComponent {
                endpoint: browser.into(),
            })?
            .take_inbox())
    }

    fn expect_reply<T>(
        &mut self,
        browser: &str,
        expected: &'static str,
        extract: impl Fn(&FromServer) -> Option<T>,
    ) -> Result<T, SystemError> {
        let inbox = self.take_browser_inbox(browser)?;
        for reply in &inbox {
            if let Some(value) = extract(reply) {
                return Ok(value);
            }
            if let FromServer::Error { message } = reply {
                return Err(SystemError::ServerRejected {
                    message: message.clone(),
                });
            }
        }
        Err(SystemError::MissingReply { expected })
    }

    // -- end-to-end flows -----------------------------------------------------------

    /// Registers an Amnesia account, logs the browser in, pairs the phone
    /// (CAPTCHA flow), and performs the one-time cloud backup.
    ///
    /// # Errors
    ///
    /// Propagates any rejection along the flow.
    pub fn setup_user(
        &mut self,
        user_id: &str,
        master_password: &str,
        browser: &str,
        phone: &str,
    ) -> Result<(), SystemError> {
        // 1. Create the Amnesia account.
        let msg = self
            .browser(browser)?
            .register_message(user_id, master_password);
        self.send_from_browser(browser, msg)?;
        self.expect_reply(browser, "Registered", |r| {
            matches!(r, FromServer::Registered).then_some(())
        })?;

        // 2. Log in.
        self.login(browser, user_id, master_password)?;

        // 3. Pair the phone: captcha displayed on the web page…
        let msg = self.browser(browser)?.begin_pairing_message()?;
        self.send_from_browser(browser, msg)?;
        let captcha = self.expect_reply(browser, "PairingChallenge", |r| match r {
            FromServer::PairingChallenge { captcha } => Some(captcha.clone()),
            _ => None,
        })?;

        // …the phone registers with the rendezvous and submits the code with
        // its Pid and registration ID.
        let (pid, registration_id) = {
            let phone_agent =
                self.phones
                    .get_mut(phone)
                    .ok_or_else(|| SystemError::UnknownComponent {
                        endpoint: phone.into(),
                    })?;
            let reg = phone_agent.register_with_rendezvous(&mut self.gcm);
            (phone_agent.pid().clone(), reg)
        };
        let pairing = ToServer::CompletePhonePairing {
            user_id: user_id.into(),
            captcha,
            pid,
            registration_id,
            reply_to: browser.into(),
        };
        let bytes = pairing.to_wire()?;
        let sealed = self.seal(phone, SERVER_ENDPOINT, bytes);
        self.net.send(phone, SERVER_ENDPOINT, sealed)?;
        self.pump();
        self.expect_reply(browser, "PhonePaired", |r| {
            matches!(r, FromServer::PhonePaired).then_some(())
        })?;

        // 4. One-time Kp backup to the cloud provider.
        self.phones
            .get(phone)
            .expect("phone present")
            .backup_to_cloud(&mut self.cloud, user_id)?;
        Ok(())
    }

    /// Logs a browser into the Amnesia server.
    ///
    /// # Errors
    ///
    /// Propagates login rejections.
    pub fn login(
        &mut self,
        browser: &str,
        user_id: &str,
        master_password: &str,
    ) -> Result<(), SystemError> {
        let msg = self
            .browser(browser)?
            .login_message(user_id, master_password);
        self.send_from_browser(browser, msg)?;
        self.expect_reply(browser, "LoginOk", |r| {
            matches!(r, FromServer::LoginOk { .. }).then_some(())
        })
    }

    /// Adds a managed website account.
    ///
    /// # Errors
    ///
    /// Propagates server rejections.
    pub fn add_account(
        &mut self,
        browser: &str,
        username: Username,
        domain: Domain,
        policy: PasswordPolicy,
    ) -> Result<(), SystemError> {
        let msg = self
            .browser(browser)?
            .add_account_message(username, domain, policy)?;
        self.send_from_browser(browser, msg)?;
        self.expect_reply(browser, "AccountAdded", |r| {
            matches!(r, FromServer::AccountAdded).then_some(())
        })
    }

    /// Lists the logged-in user's managed accounts.
    ///
    /// # Errors
    ///
    /// Propagates server rejections.
    pub fn list_accounts(&mut self, browser: &str) -> Result<Vec<AccountRef>, SystemError> {
        let msg = self.browser(browser)?.list_accounts_message()?;
        self.send_from_browser(browser, msg)?;
        self.expect_reply(browser, "Accounts", |r| match r {
            FromServer::Accounts { accounts } => Some(accounts.clone()),
            _ => None,
        })
    }

    /// Rotates an account's seed — changing its generated password.
    ///
    /// # Errors
    ///
    /// Propagates server rejections.
    pub fn rotate_seed(
        &mut self,
        browser: &str,
        username: Username,
        domain: Domain,
    ) -> Result<(), SystemError> {
        let msg = self
            .browser(browser)?
            .rotate_seed_message(username, domain)?;
        self.send_from_browser(browser, msg)?;
        self.expect_reply(browser, "SeedRotated", |r| {
            matches!(r, FromServer::SeedRotated).then_some(())
        })
    }

    /// Runs the full six-step generation flow and returns the password with
    /// its measured latency. If the phone's policy is `Manual`, the pending
    /// confirmation is accepted (the user taps "accept").
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn generate_password(
        &mut self,
        browser: &str,
        phone: &str,
        username: &Username,
        domain: &Domain,
    ) -> Result<GenerationOutcome, SystemError> {
        // End-to-end span over simulated time: browser click to password in
        // the browser, a superset of the paper's measured tstart→tend window.
        let e2e = self
            .telemetry
            .span("system.generate_password_e2e_us", self.net.clock());
        let result = self.generate_password_inner(browser, phone, username, domain);
        match &result {
            Ok(_) => {
                self.telemetry.counter("system.generations").inc();
                e2e.finish();
            }
            Err(_) => e2e.cancel(),
        }
        result
    }

    fn generate_password_inner(
        &mut self,
        browser: &str,
        phone: &str,
        username: &Username,
        domain: &Domain,
    ) -> Result<GenerationOutcome, SystemError> {
        let msg = self
            .browser(browser)?
            .request_password_message(username.clone(), domain.clone())?;
        self.send_from_browser(browser, msg)?;

        // Under the Manual policy the pump stalls at the confirmation; the
        // simulated user now accepts.
        let maybe_response = {
            let now = self.net.now();
            match self.phones.get_mut(phone) {
                Some(agent) if !agent.pending_requests().is_empty() => {
                    Some(agent.confirm_at(0, now)?)
                }
                _ => None,
            }
        };
        if let Some(response) = maybe_response {
            self.net.advance(self.config.profile.token_compute);
            self.send_token_from_phone(phone, response)?;
            self.pump();
        }

        let (account, password, requested_at) =
            self.expect_reply(browser, "PasswordReady", |r| match r {
                FromServer::PasswordReady {
                    account,
                    password,
                    requested_at,
                } => Some((account.clone(), password.clone(), *requested_at)),
                _ => None,
            })?;
        let latency = self
            .generation_latencies
            .last()
            .copied()
            .unwrap_or(SimDuration::ZERO);
        let _ = requested_at;
        Ok(GenerationOutcome {
            account,
            password,
            latency,
        })
    }

    /// [`generate_password`](Self::generate_password) with bounded retries
    /// for lossy push delivery: mobile push is best-effort, and a dropped
    /// push leaves the request pending forever, so real clients re-request.
    /// Retries re-enter the full flow (a fresh `R` push).
    ///
    /// # Errors
    ///
    /// Returns the final attempt's error if all `attempts` fail.
    pub fn generate_password_with_retry(
        &mut self,
        browser: &str,
        phone: &str,
        username: &Username,
        domain: &Domain,
        attempts: u32,
    ) -> Result<GenerationOutcome, SystemError> {
        let mut last_err = SystemError::MissingReply {
            expected: "PasswordReady",
        };
        for attempt in 0..attempts.max(1) {
            if attempt > 0 {
                self.telemetry.counter("system.generation_retries").inc();
            }
            match self.generate_password(browser, phone, username, domain) {
                Ok(outcome) => return Ok(outcome),
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Vault extension (§VIII): stores a user-chosen password for
    /// `(username, domain)`. The phone round obtains the token that keys the
    /// sealing; under the `Manual` policy the pending confirmation is
    /// accepted.
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn store_chosen_password(
        &mut self,
        browser: &str,
        phone: &str,
        username: Username,
        domain: Domain,
        chosen_password: &str,
    ) -> Result<AccountRef, SystemError> {
        let session = self
            .browser(browser)?
            .session()
            .cloned()
            .ok_or(SystemError::Browser(
                amnesia_client::BrowserError::NotLoggedIn,
            ))?;
        let msg = ToServer::StoreChosenPassword {
            session,
            username,
            domain,
            chosen_password: chosen_password.to_string(),
            reply_to: browser.into(),
        };
        self.send_from_browser(browser, msg)?;

        let maybe_response = {
            let now = self.net.now();
            match self.phones.get_mut(phone) {
                Some(agent) if !agent.pending_requests().is_empty() => {
                    Some(agent.confirm_at(0, now)?)
                }
                _ => None,
            }
        };
        if let Some(response) = maybe_response {
            self.net.advance(self.config.profile.token_compute);
            self.send_token_from_phone(phone, response)?;
            self.pump();
        }
        self.expect_reply(browser, "ChosenPasswordStored", |r| match r {
            FromServer::ChosenPasswordStored { account } => Some(account.clone()),
            _ => None,
        })
    }

    /// Session-mechanism extension (§VIII): the user enables a generation
    /// session on the phone; the grant travels to the server and subsequent
    /// generations auto-confirm without phone interaction, up to `max_uses`.
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn enable_generation_session(
        &mut self,
        user_id: &str,
        phone: &str,
        browser: &str,
        max_uses: u32,
    ) -> Result<u32, SystemError> {
        let grant = {
            let agent =
                self.phones
                    .get_mut(phone)
                    .ok_or_else(|| SystemError::UnknownComponent {
                        endpoint: phone.into(),
                    })?;
            agent.grant_session(max_uses, &mut self.channel_rng)
        };
        let msg = ToServer::SessionGrant {
            user_id: user_id.into(),
            grant,
            max_uses,
            reply_to: browser.into(),
        };
        let bytes = msg.to_wire()?;
        let sealed = self.seal(phone, SERVER_ENDPOINT, bytes);
        self.net.send(phone, SERVER_ENDPOINT, sealed)?;
        self.pump();
        self.expect_reply(browser, "SessionGranted", |r| match r {
            FromServer::SessionGranted { remaining_uses } => Some(*remaining_uses),
            _ => None,
        })
    }

    /// Phone-compromise recovery (§III-C1), end to end: downloads the cloud
    /// backup, uploads it to the server, collects the regenerated old
    /// passwords, purges the old phone at the rendezvous, installs and pairs
    /// a replacement phone, and re-runs the cloud backup.
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn recover_phone(
        &mut self,
        user_id: &str,
        master_password: &str,
        browser: &str,
        new_phone: &str,
        new_phone_seed: u64,
    ) -> Result<RecoveryOutcome, SystemError> {
        // The user fetches their backup from the cloud provider…
        let backup = AmnesiaPhone::download_backup_from_cloud(&mut self.cloud, user_id)?;

        // …notes the to-be-purged registration, and uploads the backup.
        let old_registration = self.server.user_record(user_id)?.registration_id.clone();

        let msg = ToServer::RecoverPhone {
            user_id: user_id.into(),
            master_password: master_password.into(),
            backup,
            reply_to: browser.into(),
        };
        self.send_from_browser(browser, msg)?;
        let credentials = self.expect_reply(browser, "PhoneRecovered", |r| match r {
            FromServer::PhoneRecovered { credentials } => Some(credentials.clone()),
            _ => None,
        })?;

        if let Some(reg) = old_registration {
            self.gcm.unregister(&reg);
        }

        // Fresh install on the new phone, then the normal pairing flow.
        self.add_phone(new_phone, new_phone_seed);
        self.login(browser, user_id, master_password)?;
        let msg = self.browser(browser)?.begin_pairing_message()?;
        self.send_from_browser(browser, msg)?;
        let captcha = self.expect_reply(browser, "PairingChallenge", |r| match r {
            FromServer::PairingChallenge { captcha } => Some(captcha.clone()),
            _ => None,
        })?;
        let (pid, registration_id) = {
            let agent = self.phones.get_mut(new_phone).expect("just added");
            let reg = agent.register_with_rendezvous(&mut self.gcm);
            (agent.pid().clone(), reg)
        };
        let pairing = ToServer::CompletePhonePairing {
            user_id: user_id.into(),
            captcha,
            pid,
            registration_id,
            reply_to: browser.into(),
        };
        let bytes = pairing.to_wire()?;
        let sealed = self.seal(new_phone, SERVER_ENDPOINT, bytes);
        self.net.send(new_phone, SERVER_ENDPOINT, sealed)?;
        self.pump();
        self.expect_reply(browser, "PhonePaired", |r| {
            matches!(r, FromServer::PhonePaired).then_some(())
        })?;
        self.phones
            .get(new_phone)
            .expect("phone present")
            .backup_to_cloud(&mut self.cloud, user_id)?;

        Ok(RecoveryOutcome { credentials })
    }

    /// Master-password-compromise recovery (§III-C2): the phone proves
    /// possession of `Pid` and the master password changes.
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn change_master_password(
        &mut self,
        user_id: &str,
        old_master_password: &str,
        new_master_password: &str,
        browser: &str,
        phone: &str,
    ) -> Result<(), SystemError> {
        let pid = self
            .phones
            .get(phone)
            .ok_or_else(|| SystemError::UnknownComponent {
                endpoint: phone.into(),
            })?
            .pid()
            .clone();
        let msg = ToServer::ChangeMasterPassword {
            user_id: user_id.into(),
            old_master_password: old_master_password.into(),
            pid,
            new_master_password: new_master_password.into(),
            reply_to: browser.into(),
        };
        let bytes = msg.to_wire()?;
        let sealed = self.seal(phone, SERVER_ENDPOINT, bytes);
        self.net.send(phone, SERVER_ENDPOINT, sealed)?;
        self.pump();
        self.expect_reply(browser, "MasterPasswordChanged", |r| {
            matches!(r, FromServer::MasterPasswordChanged).then_some(())
        })
    }

    // -- accessors -----------------------------------------------------------------

    /// The deployment configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The simulated network (attach wiretaps here).
    pub fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.net.now()
    }

    /// The Amnesia server.
    pub fn server(&self) -> &AmnesiaServer {
        &self.server
    }

    /// Mutable access to the server (attack models, direct inspection).
    pub fn server_mut(&mut self) -> &mut AmnesiaServer {
        &mut self.server
    }

    /// The rendezvous service.
    pub fn gcm_mut(&mut self) -> &mut RendezvousServer {
        &mut self.gcm
    }

    /// The cloud provider.
    pub fn cloud_mut(&mut self) -> &mut CloudProvider {
        &mut self.cloud
    }

    /// A phone agent by endpoint name.
    pub fn phone(&self, name: &str) -> Option<&AmnesiaPhone> {
        self.phones.get(name)
    }

    /// Mutable phone access (confirmation policies, compromise models).
    pub fn phone_mut(&mut self, name: &str) -> Option<&mut AmnesiaPhone> {
        self.phones.get_mut(name)
    }

    /// A browser by endpoint name.
    pub fn browser_ref(&self, name: &str) -> Option<&Browser> {
        self.browsers.get(name)
    }

    /// Measured generation latencies, in completion order (the Figure 3
    /// samples).
    pub fn generation_latencies(&self) -> &[SimDuration] {
        &self.generation_latencies
    }

    /// Dispatch faults recorded during pumping (dropped/rejected traffic).
    pub fn faults(&self) -> &[String] {
        &self.faults
    }

    /// The deployment-wide metrics registry. Every component — network,
    /// server, rendezvous, phones — records into this one registry, so a
    /// single [`snapshot`](Registry::snapshot) covers the whole deployment.
    ///
    /// The crypto crate is dependency-free and cannot record directly;
    /// its process-wide hot-path stats are mirrored in here on every
    /// access, so reports and snapshots always carry the current
    /// `crypto.hmac.keys_created` count and `crypto.pbkdf2.threads`
    /// fan-out width.
    pub fn telemetry(&self) -> &Registry {
        let counter = self.telemetry.counter("crypto.hmac.keys_created");
        let created = amnesia_crypto::stats::hmac_keys_created();
        // Counters are monotonic: add only the delta since the last mirror.
        counter.add(created.saturating_sub(counter.get()));
        self.telemetry
            .gauge("crypto.pbkdf2.threads")
            .set(amnesia_crypto::stats::pbkdf2_threads() as i64);
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetProfile;
    use amnesia_phone::ConfirmPolicy;

    fn small() -> SystemConfig {
        SystemConfig::default().with_table_size(64)
    }

    fn setup() -> (AmnesiaSystem, Username, Domain) {
        let mut sys = AmnesiaSystem::new(small().with_seed(1));
        sys.add_browser("browser");
        sys.add_phone("phone", 11);
        sys.setup_user("alice", "correct horse", "browser", "phone")
            .unwrap();
        let u = Username::new("Alice").unwrap();
        let d = Domain::new("mail.google.com").unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        (sys, u, d)
    }

    #[test]
    fn full_setup_and_generation() {
        let (mut sys, u, d) = setup();
        let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_eq!(outcome.password.as_str().len(), 32);
        assert_eq!(outcome.account.username, u);
        assert!(outcome.latency > SimDuration::ZERO);
        assert!(sys.faults().is_empty(), "{:?}", sys.faults());

        // Deterministic: a second generation yields the same password.
        let again = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_eq!(outcome.password, again.password);
    }

    #[test]
    fn generation_equals_logical_derivation() {
        let (mut sys, u, d) = setup();
        let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
        let record = sys.server().user_record("alice").unwrap();
        let account = record.find_account(&u, &d).unwrap();
        let expected = amnesia_core::derive_password(
            &account.entry,
            &record.oid,
            sys.phone("phone").unwrap().entry_table(),
            &account.policy,
        )
        .unwrap();
        assert_eq!(outcome.password, expected);
    }

    #[test]
    fn auto_confirm_policy_works_through_push_path() {
        let (mut sys, u, d) = setup();
        sys.phone_mut("phone")
            .unwrap()
            .set_confirm_policy(ConfirmPolicy::AutoConfirm);
        let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_eq!(outcome.password.as_str().len(), 32);
    }

    #[test]
    fn rejecting_user_blocks_generation() {
        let (mut sys, u, d) = setup();
        sys.phone_mut("phone")
            .unwrap()
            .set_confirm_policy(ConfirmPolicy::AutoReject);
        let err = sys
            .generate_password("browser", "phone", &u, &d)
            .unwrap_err();
        assert!(matches!(err, SystemError::MissingReply { .. }));
    }

    #[test]
    fn seed_rotation_changes_password() {
        let (mut sys, u, d) = setup();
        let before = sys.generate_password("browser", "phone", &u, &d).unwrap();
        sys.rotate_seed("browser", u.clone(), d.clone()).unwrap();
        let after = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_ne!(before.password, after.password);
    }

    #[test]
    fn list_accounts_flow() {
        let (mut sys, u, d) = setup();
        let accounts = sys.list_accounts("browser").unwrap();
        assert_eq!(accounts.len(), 1);
        assert_eq!(accounts[0].username, u);
        assert_eq!(accounts[0].domain, d);
    }

    #[test]
    fn phone_recovery_end_to_end() {
        let (mut sys, u, d) = setup();
        let before = sys.generate_password("browser", "phone", &u, &d).unwrap();

        // The phone is stolen: remove it, recover onto a new device.
        sys.remove_phone("phone");
        let recovery = sys
            .recover_phone("alice", "correct horse", "browser", "phone-2", 999)
            .unwrap();
        assert_eq!(recovery.credentials.len(), 1);
        // The recovered (old) password matches what the user had.
        assert_eq!(recovery.credentials[0].old_password, before.password);

        // Generating with the new phone produces a *different* password
        // (new entry table), restoring bilateral security.
        let after = sys.generate_password("browser", "phone-2", &u, &d).unwrap();
        assert_ne!(after.password, before.password);
    }

    #[test]
    fn master_password_change_end_to_end() {
        let (mut sys, _, _) = setup();
        sys.change_master_password("alice", "correct horse", "new mp", "browser", "phone")
            .unwrap();
        // Old password no longer logs in; the new one does.
        assert!(sys.login("browser", "alice", "correct horse").is_err());
        sys.login("browser", "alice", "new mp").unwrap();
    }

    #[test]
    fn wrong_master_password_rejected_over_wire() {
        let mut sys = AmnesiaSystem::new(small().with_seed(2));
        sys.add_browser("browser");
        sys.add_phone("phone", 3);
        sys.setup_user("bob", "mp", "browser", "phone").unwrap();
        let err = sys.login("browser", "bob", "wrong").unwrap_err();
        assert!(matches!(err, SystemError::ServerRejected { .. }));
    }

    #[test]
    fn wiretap_on_https_sees_only_ciphertext() {
        let mut sys = AmnesiaSystem::new(small().with_seed(3));
        sys.add_browser("browser");
        sys.add_phone("phone", 4);
        let tap = sys.net_mut().tap("browser", SERVER_ENDPOINT).unwrap();
        sys.setup_user("carol", "super secret mp", "browser", "phone")
            .unwrap();
        assert!(!tap.is_empty());
        for record in tap.records() {
            assert!(
                !record
                    .payload
                    .windows(b"super secret mp".len())
                    .any(|w| w == b"super secret mp"),
                "master password visible on the wire"
            );
        }
    }

    #[test]
    fn insecure_channels_expose_plaintext() {
        // Ablation: with secure_channels off the same tap sees the secret.
        let mut sys = AmnesiaSystem::new(small().with_seed(4).with_secure_channels(false));
        sys.add_browser("browser");
        sys.add_phone("phone", 5);
        let tap = sys.net_mut().tap("browser", SERVER_ENDPOINT).unwrap();
        sys.setup_user("dave", "super secret mp", "browser", "phone")
            .unwrap();
        let seen = tap.records().iter().any(|r| {
            r.payload
                .windows(b"super secret mp".len())
                .any(|w| w == b"super secret mp")
        });
        assert!(seen, "plaintext should be visible without channel crypto");
    }

    #[test]
    fn latency_accumulates_per_generation() {
        let mut sys = AmnesiaSystem::new(small().with_seed(5).with_profile(NetProfile::wifi()));
        sys.add_browser("browser");
        sys.add_phone("phone", 6);
        sys.setup_user("erin", "mp", "browser", "phone").unwrap();
        let u = Username::new("erin").unwrap();
        let d = Domain::new("site.com").unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        for _ in 0..5 {
            sys.generate_password("browser", "phone", &u, &d).unwrap();
        }
        assert_eq!(sys.generation_latencies().len(), 5);
        for l in sys.generation_latencies() {
            // Plausible wifi-profile window.
            let ms = l.as_millis_f64();
            assert!((200.0..2000.0).contains(&ms), "latency {ms}ms");
        }
    }

    #[test]
    fn telemetry_covers_every_component_and_step() {
        let (mut sys, u, d) = setup();
        for _ in 0..3 {
            sys.generate_password("browser", "phone", &u, &d).unwrap();
        }
        let snapshot = sys.telemetry().snapshot();

        // Counters from all four instrumented components.
        assert!(snapshot.counters["net.frames_sent"] > 0);
        assert_eq!(snapshot.counters["server.requests_pushed"], 3);
        assert_eq!(snapshot.counters["rendezvous.push_forwarded"], 3);
        assert_eq!(snapshot.counters["phone.pushes_received"], 3);
        assert_eq!(snapshot.counters["phone.tokens_computed"], 3);
        assert_eq!(snapshot.counters["system.generations"], 3);

        // Every protocol step of Fig. 1 has a latency histogram with one
        // sample per generation, plus the end-to-end measures.
        for step in [
            "steps.step1_request_upload_us",
            "steps.step2_server_to_gcm_us",
            "steps.step3_push_delivery_us",
            "steps.step4_token_upload_us",
            "steps.step5_password_compute_us",
            "steps.step6_password_download_us",
            "system.generate_password_us",
            "system.generate_password_e2e_us",
        ] {
            assert_eq!(snapshot.histograms[step].count(), 3, "{step}");
        }

        // The measured window (steps 2–5) is a lower bound on the e2e span,
        // and the per-step legs sum to less than the e2e total.
        let window = snapshot.histograms["system.generate_password_us"]
            .mean()
            .unwrap();
        let e2e = snapshot.histograms["system.generate_password_e2e_us"]
            .mean()
            .unwrap();
        assert!(
            window < e2e,
            "window {window}us should be within e2e {e2e}us"
        );

        // Confirm latency was recorded via confirm_at under the Manual policy.
        assert_eq!(snapshot.histograms["phone.confirm_latency_us"].count(), 3);

        // Crypto hot-path stats are mirrored into the deployment registry:
        // setup + generations key HMACs (channel keys, verifiers, DRBG), and
        // at least one PBKDF2 derivation ran (width >= 1).
        assert!(snapshot.counters["crypto.hmac.keys_created"] > 0);
        assert!(snapshot.gauges["crypto.pbkdf2.threads"] >= 1);
    }

    #[test]
    fn retry_counter_tracks_lossy_push_attempts() {
        let mut sys = AmnesiaSystem::new(
            small()
                .with_seed(77)
                .with_profile(NetProfile::wifi().with_push_drop_probability(1.0)),
        );
        sys.add_browser("browser");
        sys.add_phone("phone", 8);
        sys.setup_user("frank", "mp", "browser", "phone").unwrap();
        let u = Username::new("frank").unwrap();
        let d = Domain::new("site.com").unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        // Every push drops, so all 3 attempts fail and 2 retries are counted.
        sys.generate_password_with_retry("browser", "phone", &u, &d, 3)
            .unwrap_err();
        let snapshot = sys.telemetry().snapshot();
        assert_eq!(snapshot.counters["system.generation_retries"], 2);
        assert!(snapshot.counters["net.frames_dropped"] >= 3);
        assert_eq!(snapshot.counters.get("system.generations"), None);
    }
}
