//! The deployment object: an event-loop host for the sans-IO session engine.
//!
//! Every end-to-end flow begins by inserting a [`Session`] into the session
//! table and executing the actions it emits; frames coming off the simulated
//! network are routed back to the owning session by the `request_id` echoed
//! in every server [`Reply`] envelope. Because sessions are just table
//! entries, any number of flows can be in flight at once —
//! [`generate_passwords_concurrent`](AmnesiaSystem::generate_passwords_concurrent)
//! drives hundreds of interleaved generations through one network.

use crate::config::SystemConfig;
use crate::error::SystemError;
use crate::session::{Action, Event, FlowSpec, Origin, Session, SessionId, SessionOutcome};
use amnesia_client::Browser;
use amnesia_cloud::CloudProvider;
use amnesia_core::{Domain, GeneratedPassword, PasswordPolicy, Username};
use amnesia_crypto::SecretRng;
use amnesia_net::{Frame, LinkProfile, SecureChannel, SimClock, SimDuration, SimInstant, SimNet};
use amnesia_phone::{AmnesiaPhone, PhoneConfig, PhoneError, PushOutcome};
use amnesia_rendezvous::{RegistrationId, RendezvousServer};
use amnesia_server::protocol::FromServer;
use amnesia_server::protocol::{PhonePush, Reply, ToServer};
use amnesia_server::storage::AccountRef;
use amnesia_server::{AmnesiaServer, ServerConfig};
use amnesia_telemetry::{Registry, Span};
use std::collections::BTreeMap;
use std::fmt;

/// Endpoint name of the Amnesia server.
pub const SERVER_ENDPOINT: &str = "amnesia-server";
/// Endpoint name of the rendezvous service.
pub const GCM_ENDPOINT: &str = "gcm";

/// Result of one end-to-end password generation.
#[derive(Clone, Debug)]
pub struct GenerationOutcome {
    /// The account the password belongs to.
    pub account: AccountRef,
    /// The generated password, as delivered to the browser.
    pub password: GeneratedPassword,
    /// The paper's measured latency: server `tend` − `tstart`
    /// (push creation to password completion), attributed to *this*
    /// session's reply.
    pub latency: SimDuration,
}

/// Result of the phone-compromise recovery flow.
#[derive(Clone, Debug)]
pub struct RecoveryOutcome {
    /// Old passwords regenerated from the uploaded backup, which the user
    /// must now change on each website.
    pub credentials: Vec<amnesia_server::RecoveredCredential>,
}

/// One generation request inside a
/// [`generate_passwords_concurrent`](AmnesiaSystem::generate_passwords_concurrent)
/// batch.
#[derive(Clone, Debug)]
pub struct GenerationRequest {
    /// Browser endpoint the request originates from.
    pub browser: String,
    /// Phone endpoint that confirms the request.
    pub phone: String,
    /// Account username `µ`.
    pub username: Username,
    /// Account domain `d`.
    pub domain: Domain,
}

/// Host-side bookkeeping around one engine [`Session`].
struct SessionEntry {
    engine: Session,
    browser: String,
    phone: Option<String>,
    user_id: Option<String>,
    /// Simulated deadline of the last `ArmTimer`.
    deadline: Option<SimInstant>,
    /// The §VI-B measured window of this session's `PasswordReady` reply.
    window: Option<SimDuration>,
    /// The host (simulated user) has approved the pending confirmation.
    confirm_approved: bool,
    /// Terminal result; `Some` freezes the session (first writer wins).
    outcome: Option<Result<SessionOutcome, SystemError>>,
    /// Replacement phone `(endpoint, seed)` installed by `InstallPhone`.
    install: Option<(String, u64)>,
    /// Old rendezvous registration purged when the replacement installs.
    purge_registration: Option<RegistrationId>,
    /// End-to-end span over simulated time (generation flows only).
    span: Option<Span<SimClock>>,
}

/// The assembled deployment. See the crate-level docs and example.
pub struct AmnesiaSystem {
    config: SystemConfig,
    net: SimNet,
    server: AmnesiaServer,
    server_seed: u64,
    gcm: RendezvousServer,
    cloud: CloudProvider,
    phones: BTreeMap<String, AmnesiaPhone>,
    browsers: BTreeMap<String, Browser>,
    /// Directed secure channels, keyed `from → to` (nested so the per-frame
    /// seal/open lookups borrow `&str` instead of allocating key tuples).
    channels: BTreeMap<String, BTreeMap<String, SecureChannel>>,
    channel_rng: SecretRng,
    sessions: BTreeMap<SessionId, SessionEntry>,
    next_session_id: SessionId,
    /// Count of unsettled sessions (tracked incrementally; scanning the
    /// table per completion made the event loop quadratic in batch size).
    inflight: u64,
    /// Network drops already attributed to sessions (drop detection edge).
    seen_drops: u64,
    generation_latencies: Vec<SimDuration>,
    faults: Vec<String>,
    telemetry: Registry,
}

impl fmt::Debug for AmnesiaSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AmnesiaSystem")
            .field("profile", &self.config.profile.name)
            .field("phones", &self.phones.keys().collect::<Vec<_>>())
            .field("browsers", &self.browsers.keys().collect::<Vec<_>>())
            .field("now", &self.net.now())
            .finish_non_exhaustive()
    }
}

impl AmnesiaSystem {
    /// Builds a deployment with a server, rendezvous service and cloud
    /// provider; add browsers and phones afterwards.
    pub fn new(config: SystemConfig) -> Self {
        let telemetry = Registry::new();
        let mut seed_rng = SecretRng::seeded(config.seed);
        let mut net = SimNet::new(seed_rng.next_u64());
        net.set_telemetry(telemetry.clone());
        net.register(SERVER_ENDPOINT);
        net.register(GCM_ENDPOINT);
        net.connect(
            SERVER_ENDPOINT,
            GCM_ENDPOINT,
            LinkProfile::new(config.profile.server_gcm.clone()),
        );

        // Always draw, even when overridden, so the downstream rendezvous
        // and channel streams are independent of the override.
        let drawn_server_seed = seed_rng.next_u64();
        let server_seed = config.server_seed.unwrap_or(drawn_server_seed);
        let mut server = AmnesiaServer::new(ServerConfig {
            endpoint: SERVER_ENDPOINT.into(),
            seed: server_seed,
            kdf_policy: config.kdf_policy,
        });
        server.set_telemetry(telemetry.clone());
        let mut gcm = RendezvousServer::new(GCM_ENDPOINT, seed_rng.next_u64());
        gcm.set_telemetry(telemetry.clone());
        let channel_rng = seed_rng.fork();

        AmnesiaSystem {
            config,
            net,
            server,
            server_seed,
            gcm,
            cloud: CloudProvider::new("sim-cloud"),
            phones: BTreeMap::new(),
            browsers: BTreeMap::new(),
            channels: BTreeMap::new(),
            channel_rng,
            sessions: BTreeMap::new(),
            next_session_id: 1,
            inflight: 0,
            seen_drops: 0,
            generation_latencies: Vec::new(),
            faults: Vec::new(),
            telemetry,
        }
    }

    // -- topology -----------------------------------------------------------

    fn provision_channel_pair(&mut self, a: &str, b: &str) {
        // Stand-in for the TLS handshake: both directions keyed from one
        // fresh shared secret.
        let secret = self.channel_rng.bytes::<32>();
        self.channels
            .entry(a.to_string())
            .or_default()
            .insert(b.to_string(), SecureChannel::new(&secret, "fwd"));
        self.channels
            .entry(b.to_string())
            .or_default()
            .insert(a.to_string(), SecureChannel::new(&secret, "rev"));
    }

    /// Adds a browser endpoint connected to the server over the profile's
    /// HTTPS link.
    pub fn add_browser(&mut self, name: &str) {
        self.net.register(name);
        self.net.connect_bidirectional(
            name,
            SERVER_ENDPOINT,
            LinkProfile::new(self.config.profile.browser_server.clone()),
        );
        self.provision_channel_pair(name, SERVER_ENDPOINT);
        self.browsers.insert(name.to_string(), Browser::new(name));
    }

    /// Adds a browser running *on the phone* (paper §III: "The process is
    /// the same for a user using a mobile browser. In this case, the phone
    /// would also take on the role of the PC."): its HTTPS link to the
    /// server uses the phone's access-network latency instead of the
    /// computer's.
    pub fn add_mobile_browser(&mut self, name: &str) {
        self.net.register(name);
        self.net.connect_bidirectional(
            name,
            SERVER_ENDPOINT,
            LinkProfile::new(self.config.profile.phone_server.clone()),
        );
        self.provision_channel_pair(name, SERVER_ENDPOINT);
        self.browsers.insert(name.to_string(), Browser::new(name));
    }

    /// Installs a phone: endpoint, push link from the rendezvous, direct
    /// link to the server, and a protected phone↔server channel.
    pub fn add_phone(&mut self, name: &str, seed: u64) {
        self.net.register(name);
        self.net.connect(
            GCM_ENDPOINT,
            name,
            LinkProfile::new(self.config.profile.gcm_phone.clone())
                .with_drop_probability(self.config.profile.push_drop_probability),
        );
        self.net.connect(
            name,
            SERVER_ENDPOINT,
            LinkProfile::new(self.config.profile.phone_server.clone()),
        );
        self.provision_channel_pair(name, SERVER_ENDPOINT);
        let mut phone =
            AmnesiaPhone::new(PhoneConfig::new(name, seed).with_table_size(self.config.table_size));
        phone.set_telemetry(self.telemetry.clone());
        self.phones.insert(name.to_string(), phone);
    }

    /// Removes a phone component (a lost/stolen device leaving the
    /// deployment). Its network endpoint remains but nothing handles its
    /// frames.
    pub fn remove_phone(&mut self, name: &str) -> Option<AmnesiaPhone> {
        self.phones.remove(name)
    }

    // -- channel plumbing ------------------------------------------------------

    fn seal(&mut self, from: &str, to: &str, bytes: Vec<u8>) -> Result<Vec<u8>, SystemError> {
        if !self.config.secure_channels {
            return Ok(bytes);
        }
        match self.channels.get_mut(from).and_then(|m| m.get_mut(to)) {
            Some(channel) => channel.seal(&bytes).map_err(SystemError::from),
            None => Ok(bytes),
        }
    }

    fn open(&mut self, from: &str, to: &str, bytes: &[u8]) -> Result<Vec<u8>, SystemError> {
        if !self.config.secure_channels {
            return Ok(bytes.to_vec());
        }
        match self.channels.get_mut(from).and_then(|m| m.get_mut(to)) {
            Some(channel) => channel.open(bytes).map_err(SystemError::from),
            None => Ok(bytes.to_vec()),
        }
    }

    /// Exports the channel keys for one direction — the §IV-A broken-HTTPS
    /// attack model ("the attacker is somehow able to compromise the
    /// connection").
    pub fn export_channel_keys_for_attack_model(
        &self,
        from: &str,
        to: &str,
    ) -> Option<([u8; 32], [u8; 32])> {
        self.channels
            .get(from)
            .and_then(|m| m.get(to))
            .map(SecureChannel::export_keys_for_attack_model)
    }

    // -- session table ---------------------------------------------------------

    /// Opens a session for `spec` and executes its first actions. The
    /// returned id is also the wire `request_id` of every frame the session
    /// sends.
    fn begin(
        &mut self,
        browser: &str,
        phone: Option<&str>,
        user_id: Option<&str>,
        spec: FlowSpec,
        attempts: u32,
        install: Option<(String, u64)>,
    ) -> Result<SessionId, SystemError> {
        let browser_agent =
            self.browsers
                .get(browser)
                .ok_or_else(|| SystemError::UnknownComponent {
                    endpoint: browser.into(),
                })?;
        let is_generate = matches!(spec, FlowSpec::Generate { .. });
        let id = self.next_session_id;
        self.next_session_id += 1;
        let mut engine = Session::new(id, browser, spec)
            .with_attempts(attempts.max(1))
            .with_timeout(self.config.session_timeout);
        if let Some(token) = browser_agent.session().cloned() {
            engine = engine.with_auth(token);
        }
        // End-to-end span over simulated time: browser click to password in
        // the browser, a superset of the paper's measured tstart→tend window.
        let span = is_generate.then(|| {
            self.telemetry
                .span("system.generate_password_e2e_us", self.net.clock())
        });
        self.sessions.insert(
            id,
            SessionEntry {
                engine,
                browser: browser.to_string(),
                phone: phone.map(str::to_string),
                user_id: user_id.map(str::to_string),
                deadline: None,
                window: None,
                confirm_approved: false,
                outcome: None,
                install,
                purge_registration: None,
                span,
            },
        );
        self.inflight += 1;
        self.update_inflight_gauge();
        let actions = match self.sessions.get_mut(&id) {
            Some(entry) => entry.engine.start(),
            None => Vec::new(),
        };
        self.run_actions(id, actions);
        Ok(id)
    }

    /// Feeds one event into a live session and executes the reaction.
    fn feed(&mut self, sid: SessionId, event: Event) {
        let Some(entry) = self.sessions.get_mut(&sid) else {
            return;
        };
        if entry.outcome.is_some() {
            return;
        }
        let actions = entry.engine.on_event(event);
        self.run_actions(sid, actions);
    }

    /// Executes engine actions; host-side failures terminate the session
    /// rather than propagating (the session owns its own error).
    fn run_actions(&mut self, sid: SessionId, actions: Vec<Action>) {
        for action in actions {
            match action {
                Action::Send { origin, message } => {
                    if let Err(e) = self.session_send(sid, origin, &message) {
                        self.complete(sid, Err(e));
                    }
                }
                Action::ArmTimer(duration) => {
                    let deadline = self.net.now() + duration;
                    if let Some(entry) = self.sessions.get_mut(&sid) {
                        entry.deadline = Some(deadline);
                    }
                }
                Action::ExpectUserConfirm => {
                    // The simulated user always approves; the push may
                    // arrive at the phone before or after this ack.
                    if let Some(entry) = self.sessions.get_mut(&sid) {
                        entry.confirm_approved = true;
                    }
                    if let Err(e) = self.try_confirm(sid) {
                        self.complete(sid, Err(e));
                    }
                }
                Action::RegisterPhone { .. } => match self.exec_register_phone(sid) {
                    Ok(event) => self.feed(sid, event),
                    Err(e) => self.complete(sid, Err(e)),
                },
                Action::FetchBackup => match self.exec_fetch_backup(sid) {
                    Ok(event) => self.feed(sid, event),
                    Err(e) => self.complete(sid, Err(e)),
                },
                Action::InstallPhone => match self.exec_install_phone(sid) {
                    Ok(event) => self.feed(sid, event),
                    Err(e) => self.complete(sid, Err(e)),
                },
                Action::MintGrant { max_uses } => match self.exec_mint_grant(sid, max_uses) {
                    Ok(event) => self.feed(sid, event),
                    Err(e) => self.complete(sid, Err(e)),
                },
                Action::BackupPhoneToCloud => {
                    if let Err(e) = self.exec_backup_to_cloud(sid) {
                        self.complete(sid, Err(e));
                    }
                }
                Action::NoteRetry => {
                    self.telemetry.counter("system.generation_retries").inc();
                }
                Action::Deliver(outcome) => self.complete(sid, Ok(outcome)),
                Action::Fail(error) => self.complete(sid, Err(error)),
            }
        }
    }

    /// Seals and transmits one engine-built message from the session's
    /// originating agent.
    fn session_send(
        &mut self,
        sid: SessionId,
        origin: Origin,
        message: &ToServer,
    ) -> Result<(), SystemError> {
        let entry = self.sessions.get(&sid).ok_or(SystemError::MissingReply {
            expected: "session",
        })?;
        let from = match origin {
            Origin::Browser => entry.browser.clone(),
            Origin::Phone => entry
                .phone
                .clone()
                .ok_or_else(|| SystemError::UnknownComponent {
                    endpoint: "phone".into(),
                })?,
        };
        let bytes = message.to_wire()?;
        let sealed = self.seal(&from, SERVER_ENDPOINT, bytes)?;
        self.net.send(&from, SERVER_ENDPOINT, sealed)?;
        Ok(())
    }

    /// Records a session's terminal result (first writer wins) and settles
    /// its telemetry.
    fn complete(&mut self, sid: SessionId, result: Result<SessionOutcome, SystemError>) {
        let Some(entry) = self.sessions.get_mut(&sid) else {
            return;
        };
        if entry.outcome.is_some() {
            return;
        }
        entry.deadline = None;
        if let Some(span) = entry.span.take() {
            match &result {
                Ok(_) => {
                    span.finish();
                }
                Err(_) => span.cancel(),
            }
        }
        if matches!(result, Ok(SessionOutcome::Password { .. })) {
            self.telemetry.counter("system.generations").inc();
        }
        entry.outcome = Some(result);
        self.inflight = self.inflight.saturating_sub(1);
        self.update_inflight_gauge();
    }

    fn update_inflight_gauge(&self) {
        self.telemetry
            .gauge("system.session.inflight")
            .set_u64(self.inflight);
        self.telemetry
            .gauge("system.session.inflight_peak")
            .set_max_u64(self.inflight);
    }

    /// If the session's phone holds a pending confirmation for it and the
    /// user has approved, confirm and send the token (step 4 of Fig. 1).
    fn try_confirm(&mut self, sid: SessionId) -> Result<(), SystemError> {
        let Some(entry) = self.sessions.get(&sid) else {
            return Ok(());
        };
        let Some(phone_name) = entry.phone.clone() else {
            return Ok(());
        };
        let now = self.net.now();
        let response = match self.phones.get_mut(&phone_name) {
            Some(agent) => match agent.confirm_request(sid, now) {
                Ok(response) => response,
                // The push has not reached the phone yet (or was consumed by
                // a grant); the dispatch path will confirm on arrival.
                Err(PhoneError::NoSuchPending) => return Ok(()),
                Err(e) => return Err(e.into()),
            },
            None => return Ok(()),
        };
        self.send_token_from_phone(&phone_name, response)
    }

    // -- host-executed actions -------------------------------------------------

    /// `Action::RegisterPhone`: the phone registers with the rendezvous and
    /// reports its identity for `CompletePhonePairing`.
    fn exec_register_phone(&mut self, sid: SessionId) -> Result<Event, SystemError> {
        let name = self
            .sessions
            .get(&sid)
            .and_then(|e| e.phone.clone())
            .ok_or_else(|| SystemError::UnknownComponent {
                endpoint: "phone".into(),
            })?;
        let agent = self
            .phones
            .get_mut(&name)
            .ok_or_else(|| SystemError::UnknownComponent { endpoint: name })?;
        let registration_id = agent.register_with_rendezvous(&mut self.gcm);
        Ok(Event::PairingInfo {
            pid: agent.pid().clone(),
            registration_id,
        })
    }

    /// `Action::FetchBackup`: download the user's `Kp` backup from the cloud
    /// and note the to-be-purged rendezvous registration.
    fn exec_fetch_backup(&mut self, sid: SessionId) -> Result<Event, SystemError> {
        let user_id = self
            .sessions
            .get(&sid)
            .and_then(|e| e.user_id.clone())
            .ok_or(SystemError::MissingReply {
                expected: "user id",
            })?;
        let backup = AmnesiaPhone::download_backup_from_cloud(&mut self.cloud, &user_id)?;
        let old_registration = self.server.user_record(&user_id)?.registration_id.clone();
        if let Some(entry) = self.sessions.get_mut(&sid) {
            entry.purge_registration = old_registration;
        }
        Ok(Event::BackupFetched(backup))
    }

    /// `Action::InstallPhone`: purge the stolen phone's registration, then
    /// install the replacement device the flow was started with.
    fn exec_install_phone(&mut self, sid: SessionId) -> Result<Event, SystemError> {
        let (install, purge) = match self.sessions.get_mut(&sid) {
            Some(entry) => (entry.install.take(), entry.purge_registration.take()),
            None => (None, None),
        };
        if let Some(reg) = purge {
            self.gcm.unregister(&reg);
        }
        let (name, seed) = install.ok_or(SystemError::MissingReply {
            expected: "replacement phone",
        })?;
        self.add_phone(&name, seed);
        if let Some(entry) = self.sessions.get_mut(&sid) {
            entry.phone = Some(name);
        }
        Ok(Event::PhoneInstalled)
    }

    /// `Action::MintGrant`: the phone mints the §VIII session grant.
    fn exec_mint_grant(&mut self, sid: SessionId, max_uses: u32) -> Result<Event, SystemError> {
        let name = self
            .sessions
            .get(&sid)
            .and_then(|e| e.phone.clone())
            .ok_or_else(|| SystemError::UnknownComponent {
                endpoint: "phone".into(),
            })?;
        let agent = self
            .phones
            .get_mut(&name)
            .ok_or_else(|| SystemError::UnknownComponent { endpoint: name })?;
        let grant = agent.grant_session(max_uses, &mut self.channel_rng);
        Ok(Event::GrantMinted(grant))
    }

    /// `Action::BackupPhoneToCloud`: the §III-C1 one-time `Kp` backup.
    fn exec_backup_to_cloud(&mut self, sid: SessionId) -> Result<(), SystemError> {
        let user_id = self
            .sessions
            .get(&sid)
            .and_then(|e| e.user_id.clone())
            .ok_or(SystemError::MissingReply {
                expected: "user id",
            })?;
        let name = self
            .sessions
            .get(&sid)
            .and_then(|e| e.phone.clone())
            .ok_or_else(|| SystemError::UnknownComponent {
                endpoint: "phone".into(),
            })?;
        let agent = self
            .phones
            .get(&name)
            .ok_or_else(|| SystemError::UnknownComponent { endpoint: name })?;
        agent.backup_to_cloud(&mut self.cloud, &user_id)?;
        Ok(())
    }

    // -- event loop ------------------------------------------------------------

    /// Drives the network and the given sessions until every one of them is
    /// settled, interleaving frame delivery with timer deadlines: a timer
    /// that expires before the next frame lands fires first, even while the
    /// frame is still in flight (its eventual arrival is then a late
    /// reply). Push drops are attributed when the network goes idle.
    fn drive(&mut self, targets: &[SessionId]) {
        self.drive_until_below(targets, 1);
    }

    /// Like [`drive`](Self::drive), but returns as soon as fewer than
    /// `below` of the targets remain unsettled. `below == 1` runs
    /// everything to completion; `below == targets.len()` returns after
    /// the first settles — how a bounded-in-flight batch driver frees an
    /// admission slot without waiting for the whole window.
    fn drive_until_below(&mut self, targets: &[SessionId], below: usize) {
        let below = below.max(1);
        loop {
            let live: Vec<SessionId> = targets
                .iter()
                .copied()
                .filter(|sid| self.sessions.get(sid).is_some_and(|e| e.outcome.is_none()))
                .collect();
            if live.len() < below {
                return;
            }

            let next_deadline = live
                .iter()
                .filter_map(|sid| self.sessions.get(sid).and_then(|e| e.deadline))
                .min();

            // Deliver every frame scheduled no later than the earliest
            // deadline in one tight batch. The cached minimum stays a valid
            // bound for the whole batch: every session re-arms with the same
            // configured timeout, so a re-arm during the batch lands at
            // `frame time + timeout` — never before an already-armed
            // deadline — and completions only clear deadlines.
            let mut delivered_any = false;
            while let Some(frame_at) = self.net.next_delivery_at() {
                if next_deadline.is_some_and(|deadline| deadline < frame_at) {
                    break;
                }
                self.deliver_one_frame();
                delivered_any = true;
                // When the caller only waits for a slot to free up, hand
                // control back per frame so a settle is noticed promptly.
                if below > 1 {
                    break;
                }
            }
            if delivered_any {
                continue; // re-derive live sessions and the deadline
            }

            match self.net.next_delivery_at() {
                // A deadline strictly before the next delivery expires now;
                // the in-flight frame will be counted late on arrival.
                Some(_) => {
                    if let Some(deadline) = next_deadline {
                        self.fire_timers(&live, deadline);
                    }
                }
                None => {
                    // Push loss: the only lossy leg is rendezvous → phone, so
                    // when the network is idle, new drops mean some
                    // awaiting-push session's push is gone. Let every exposed
                    // session react (a session whose push actually arrived
                    // ignores the retry hint at worst by re-sending; with
                    // per-session drop bookkeeping the sim profiles used by
                    // the tests never hit that case).
                    let dropped = self.net.dropped_count();
                    if dropped > self.seen_drops {
                        self.seen_drops = dropped;
                        let mut fired = false;
                        for sid in &live {
                            let exposed = self
                                .sessions
                                .get(sid)
                                .is_some_and(|e| e.engine.awaits_push());
                            if exposed {
                                fired = true;
                                self.feed(*sid, Event::PushDropped);
                            }
                        }
                        if fired {
                            continue;
                        }
                    }
                    match next_deadline {
                        Some(deadline) => self.fire_timers(&live, deadline),
                        None => {
                            // No timer armed and nothing in flight: the flow
                            // can never finish. Fail every remaining session
                            // with the reply it was waiting for.
                            for sid in live {
                                let expected = self
                                    .sessions
                                    .get(&sid)
                                    .map(|e| e.engine.expected_reply())
                                    .unwrap_or("reply");
                                self.complete(sid, Err(SystemError::MissingReply { expected }));
                            }
                        }
                    }
                }
            }
        }
    }

    /// Advances simulated time to `deadline` and feeds `TimerFired` to every
    /// live session whose deadline has passed.
    fn fire_timers(&mut self, live: &[SessionId], deadline: SimInstant) {
        let now = self.net.now();
        if deadline > now {
            self.net.advance(deadline.duration_since(now));
        }
        let now = self.net.now();
        for sid in live {
            let expired = self
                .sessions
                .get(sid)
                .and_then(|e| e.deadline)
                .is_some_and(|d| d <= now);
            if expired {
                self.telemetry.counter("system.session.timeouts").inc();
                self.feed(*sid, Event::TimerFired);
            }
        }
    }

    /// Delivers and dispatches the single earliest pending frame, recording
    /// component-level rejections as faults (same policy as [`pump`](Self::pump)).
    fn deliver_one_frame(&mut self) {
        if let Some(frame) = self.net.step() {
            if let Err(e) = self.dispatch(frame) {
                self.telemetry.counter("system.dispatch_faults").inc();
                self.faults.push(e.to_string());
            }
        }
    }

    /// Removes a settled session, returning its result and the attributed
    /// §VI-B latency window (if a `PasswordReady` was routed to it).
    fn finish_session(
        &mut self,
        sid: SessionId,
    ) -> (Result<SessionOutcome, SystemError>, Option<SimDuration>) {
        match self.sessions.remove(&sid) {
            Some(entry) => {
                if entry.outcome.is_none() {
                    self.inflight = self.inflight.saturating_sub(1);
                    self.update_inflight_gauge();
                }
                let fallback = SystemError::MissingReply {
                    expected: entry.engine.expected_reply(),
                };
                (entry.outcome.unwrap_or(Err(fallback)), entry.window)
            }
            None => (
                Err(SystemError::MissingReply {
                    expected: "session",
                }),
                None,
            ),
        }
    }

    // -- dispatch ----------------------------------------------------------------

    /// Delivers and dispatches frames until the network is idle.
    ///
    /// Component-level rejections (unknown registrations, malformed pushes,
    /// replayed tokens) are recorded in [`faults`](Self::faults) rather than
    /// aborting the pump — on a real network they are just dropped traffic.
    pub fn pump(&mut self) {
        while let Some(frame) = self.net.step() {
            if let Err(e) = self.dispatch(frame) {
                self.telemetry.counter("system.dispatch_faults").inc();
                self.faults.push(e.to_string());
            }
        }
    }

    /// The frame's time on the wire — the per-leg latency attributed to the
    /// protocol step the frame carries.
    fn leg_micros(frame: &Frame) -> u64 {
        (frame.delivered_at - frame.sent_at).as_micros()
    }

    fn dispatch(&mut self, frame: Frame) -> Result<(), SystemError> {
        if frame.to == SERVER_ENDPOINT {
            self.dispatch_to_server(frame)
        } else if frame.to == GCM_ENDPOINT {
            // Step 2 leg of Fig. 1: the server's push travelling to the
            // rendezvous service.
            self.telemetry
                .record("steps.step2_server_to_gcm_us", Self::leg_micros(&frame));
            self.gcm
                .handle_frame(&frame, &mut self.net)
                .map(|_| ())
                .map_err(|e| SystemError::ServerRejected {
                    message: format!("rendezvous: {e}"),
                })
        } else if self.phones.contains_key(&frame.to) {
            self.dispatch_to_phone(frame)
        } else if self.browsers.contains_key(&frame.to) {
            self.dispatch_to_browser(frame)
        } else {
            // Endpoint exists but no live component (e.g. removed phone).
            Err(SystemError::UnknownComponent { endpoint: frame.to })
        }
    }

    fn dispatch_to_server(&mut self, frame: Frame) -> Result<(), SystemError> {
        let plaintext = self.open(&frame.from, SERVER_ENDPOINT, &frame.payload)?;
        let message = ToServer::from_wire(&plaintext)?;
        // Per-request server compute (deriving R, assembling the password) is
        // modelled as a delay on this request's *outgoing* frames, not as a
        // global clock advance: the server handles concurrent requests on
        // independent workers, so one session's compute must not inflate
        // every other in-flight session's measured window.
        let compute = match &message {
            ToServer::RequestPassword { .. } => {
                // Step 1 of Fig. 1: the browser's request reaching the server.
                self.telemetry
                    .record("steps.step1_request_upload_us", Self::leg_micros(&frame));
                self.config.profile.request_compute
            }
            ToServer::Token(_) => {
                // Step 4 leg (token upload) and step 5 (password assembly,
                // modelled as the configured compute delay).
                self.telemetry
                    .record("steps.step4_token_upload_us", Self::leg_micros(&frame));
                self.telemetry.record(
                    "steps.step5_password_compute_us",
                    self.config.profile.password_compute.as_micros(),
                );
                self.config.profile.password_compute
            }
            _ => SimDuration::ZERO,
        };
        // The server's view of time includes its own compute on this request.
        let now = self.net.now() + compute;
        let reaction = self.server.handle_message(message, now);
        if let Some(push) = reaction.push {
            self.net
                .send_after(SERVER_ENDPOINT, GCM_ENDPOINT, push.to_wire()?, compute)?;
        }
        for (dest, reply) in reaction.replies {
            if let FromServer::PasswordReady { requested_at, .. } = &reply.message {
                let latency = now.duration_since(*requested_at);
                self.telemetry
                    .record("system.generate_password_us", latency.as_micros());
                self.generation_latencies.push(latency);
                // Attribute the measured window to the owning session.
                if let Some(entry) = self.sessions.get_mut(&reply.request_id) {
                    entry.window = Some(latency);
                }
            }
            let bytes = reply.to_wire()?;
            let sealed = self.seal(SERVER_ENDPOINT, &dest, bytes)?;
            self.net
                .send_after(SERVER_ENDPOINT, &dest, sealed, compute)?;
        }
        Ok(())
    }

    fn dispatch_to_phone(&mut self, frame: Frame) -> Result<(), SystemError> {
        // Step 3 of Fig. 1: the rendezvous push arriving at the phone.
        self.telemetry
            .record("steps.step3_push_delivery_us", Self::leg_micros(&frame));
        let now = self.net.now();
        let outcome = match self.phones.get_mut(&frame.to) {
            Some(phone) => phone.handle_push(&frame.payload, now)?,
            None => return Err(SystemError::UnknownComponent { endpoint: frame.to }),
        };
        match outcome {
            PushOutcome::Respond(response) => {
                self.send_token_from_phone(&frame.to.clone(), response)?;
            }
            PushOutcome::AwaitingConfirmation => {
                // If the owning session's user already approved (the
                // RequestPushed ack beat the push here), confirm now.
                let sid = PhonePush::from_wire(&frame.payload)?.request_id;
                let approved = self
                    .sessions
                    .get(&sid)
                    .is_some_and(|e| e.outcome.is_none() && e.confirm_approved);
                if approved {
                    self.try_confirm(sid)?;
                }
            }
            PushOutcome::Rejected => {}
        }
        Ok(())
    }

    /// Seals and sends a confirmed token upload, delayed by the phone's
    /// Algorithm 1 compute time (the phone works on its own core; its
    /// compute must not pause the rest of the simulation).
    fn send_token_from_phone(
        &mut self,
        phone_endpoint: &str,
        response: amnesia_server::protocol::TokenResponse,
    ) -> Result<(), SystemError> {
        let bytes = ToServer::Token(response).to_wire()?;
        let sealed = self.seal(phone_endpoint, SERVER_ENDPOINT, bytes)?;
        self.net.send_after(
            phone_endpoint,
            SERVER_ENDPOINT,
            sealed,
            self.config.profile.token_compute,
        )?;
        Ok(())
    }

    fn dispatch_to_browser(&mut self, frame: Frame) -> Result<(), SystemError> {
        let plaintext = self.open(&frame.from, &frame.to, &frame.payload)?;
        let reply = Reply::from_wire(&plaintext)?;
        if matches!(reply.message, FromServer::PasswordReady { .. }) {
            // Step 6 of Fig. 1: the assembled password reaching the browser.
            self.telemetry
                .record("steps.step6_password_download_us", Self::leg_micros(&frame));
        }
        match self.browsers.get_mut(&frame.to) {
            Some(browser) => browser.handle_reply(reply.message.clone()),
            None => return Err(SystemError::UnknownComponent { endpoint: frame.to }),
        }
        // Route the reply to the session that is waiting for it. A session
        // that already settled (e.g. its timer fired while this frame was in
        // flight) or was already finished must not be resolved twice; the
        // frame is valid but late, and is counted as such.
        let late = self
            .sessions
            .get(&reply.request_id)
            .is_none_or(|e| e.outcome.is_some());
        if late {
            self.telemetry.counter("system.session.late_replies").inc();
        } else {
            self.feed(reply.request_id, Event::FrameReceived(reply.message));
        }
        Ok(())
    }

    // -- flow helpers --------------------------------------------------------------

    /// Runs one session to completion and returns its outcome.
    fn run_flow(
        &mut self,
        browser: &str,
        phone: Option<&str>,
        user_id: Option<&str>,
        spec: FlowSpec,
        attempts: u32,
        install: Option<(String, u64)>,
    ) -> Result<SessionOutcome, SystemError> {
        let sid = self.begin(browser, phone, user_id, spec, attempts, install)?;
        self.drive(&[sid]);
        self.finish_session(sid).0
    }

    // -- end-to-end flows -----------------------------------------------------------

    /// Registers an Amnesia account, logs the browser in, pairs the phone
    /// (CAPTCHA flow), and performs the one-time cloud backup.
    ///
    /// # Errors
    ///
    /// Propagates any rejection along the flow.
    pub fn setup_user(
        &mut self,
        user_id: &str,
        master_password: &str,
        browser: &str,
        phone: &str,
    ) -> Result<(), SystemError> {
        match self.run_flow(
            browser,
            Some(phone),
            Some(user_id),
            FlowSpec::Setup {
                user_id: user_id.into(),
                master_password: master_password.into(),
            },
            1,
            None,
        )? {
            SessionOutcome::SetupDone => Ok(()),
            _ => Err(SystemError::MissingReply {
                expected: "SetupDone",
            }),
        }
    }

    /// Logs a browser into the Amnesia server.
    ///
    /// # Errors
    ///
    /// Propagates login rejections.
    pub fn login(
        &mut self,
        browser: &str,
        user_id: &str,
        master_password: &str,
    ) -> Result<(), SystemError> {
        match self.run_flow(
            browser,
            None,
            Some(user_id),
            FlowSpec::Login {
                user_id: user_id.into(),
                master_password: master_password.into(),
            },
            1,
            None,
        )? {
            SessionOutcome::LoggedIn => Ok(()),
            _ => Err(SystemError::MissingReply {
                expected: "LoginOk",
            }),
        }
    }

    /// Adds a managed website account.
    ///
    /// # Errors
    ///
    /// Propagates server rejections.
    pub fn add_account(
        &mut self,
        browser: &str,
        username: Username,
        domain: Domain,
        policy: PasswordPolicy,
    ) -> Result<(), SystemError> {
        match self.run_flow(
            browser,
            None,
            None,
            FlowSpec::AddAccount {
                username,
                domain,
                policy,
            },
            1,
            None,
        )? {
            SessionOutcome::AccountAdded => Ok(()),
            _ => Err(SystemError::MissingReply {
                expected: "AccountAdded",
            }),
        }
    }

    /// Lists the logged-in user's managed accounts.
    ///
    /// # Errors
    ///
    /// Propagates server rejections.
    pub fn list_accounts(&mut self, browser: &str) -> Result<Vec<AccountRef>, SystemError> {
        match self.run_flow(browser, None, None, FlowSpec::ListAccounts, 1, None)? {
            SessionOutcome::Accounts(accounts) => Ok(accounts),
            _ => Err(SystemError::MissingReply {
                expected: "Accounts",
            }),
        }
    }

    /// Rotates an account's seed — changing its generated password.
    ///
    /// # Errors
    ///
    /// Propagates server rejections.
    pub fn rotate_seed(
        &mut self,
        browser: &str,
        username: Username,
        domain: Domain,
    ) -> Result<(), SystemError> {
        match self.run_flow(
            browser,
            None,
            None,
            FlowSpec::RotateSeed { username, domain },
            1,
            None,
        )? {
            SessionOutcome::SeedRotated => Ok(()),
            _ => Err(SystemError::MissingReply {
                expected: "SeedRotated",
            }),
        }
    }

    /// Runs the full six-step generation flow and returns the password with
    /// its measured latency. If the phone's policy is `Manual`, the pending
    /// confirmation is accepted (the user taps "accept").
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn generate_password(
        &mut self,
        browser: &str,
        phone: &str,
        username: &Username,
        domain: &Domain,
    ) -> Result<GenerationOutcome, SystemError> {
        self.generate_password_with_retry(browser, phone, username, domain, 1)
    }

    /// [`generate_password`](Self::generate_password) with bounded retries
    /// for lossy push delivery: mobile push is best-effort, and a dropped
    /// push leaves the request pending forever, so the session re-sends its
    /// request (same `request_id`, fresh push) up to `attempts` times.
    ///
    /// # Errors
    ///
    /// Returns the session's terminal error if all `attempts` fail.
    pub fn generate_password_with_retry(
        &mut self,
        browser: &str,
        phone: &str,
        username: &Username,
        domain: &Domain,
        attempts: u32,
    ) -> Result<GenerationOutcome, SystemError> {
        let sid = self.begin(
            browser,
            Some(phone),
            None,
            FlowSpec::Generate {
                username: username.clone(),
                domain: domain.clone(),
            },
            attempts,
            None,
        )?;
        self.drive(&[sid]);
        let (result, window) = self.finish_session(sid);
        match result? {
            SessionOutcome::Password {
                account,
                password,
                requested_at,
            } => Ok(GenerationOutcome {
                account,
                password,
                latency: window.unwrap_or_else(|| self.net.now().duration_since(requested_at)),
            }),
            _ => Err(SystemError::MissingReply {
                expected: "PasswordReady",
            }),
        }
    }

    /// Drives a whole batch of generations through the deployment at once:
    /// every session is opened up front, then the event loop interleaves
    /// their pushes, confirmations and replies over the shared network.
    /// Results (and per-session latencies) come back in request order.
    /// A bounded in-flight window (`SystemConfig::max_inflight`) admits
    /// the batch in a sliding fashion: at most `cap` sessions are open at
    /// once, a new one is admitted each time one settles, so the session
    /// table never grows past the cap no matter how large the batch is.
    pub fn generate_passwords_concurrent(
        &mut self,
        requests: &[GenerationRequest],
        attempts: u32,
    ) -> Vec<Result<GenerationOutcome, SystemError>> {
        let cap = self.config.max_inflight.max(1);
        let mut slots: Vec<Result<SessionId, SystemError>> = Vec::with_capacity(requests.len());
        let mut live: Vec<SessionId> = Vec::new();
        for request in requests {
            while live.len() >= cap {
                self.drive_until_below(&live, live.len());
                live.retain(|sid| self.sessions.get(sid).is_some_and(|e| e.outcome.is_none()));
            }
            let slot = self.begin(
                &request.browser,
                Some(&request.phone),
                None,
                FlowSpec::Generate {
                    username: request.username.clone(),
                    domain: request.domain.clone(),
                },
                attempts,
                None,
            );
            if let Ok(sid) = &slot {
                live.push(*sid);
            }
            slots.push(slot);
        }
        self.drive(&live);
        slots
            .into_iter()
            .map(|slot| {
                let sid = slot?;
                let (result, window) = self.finish_session(sid);
                match result? {
                    SessionOutcome::Password {
                        account,
                        password,
                        requested_at,
                    } => Ok(GenerationOutcome {
                        account,
                        password,
                        latency: window
                            .unwrap_or_else(|| self.net.now().duration_since(requested_at)),
                    }),
                    _ => Err(SystemError::MissingReply {
                        expected: "PasswordReady",
                    }),
                }
            })
            .collect()
    }

    /// Vault extension (§VIII): stores a user-chosen password for
    /// `(username, domain)`. The phone round obtains the token that keys the
    /// sealing; under the `Manual` policy the pending confirmation is
    /// accepted.
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn store_chosen_password(
        &mut self,
        browser: &str,
        phone: &str,
        username: Username,
        domain: Domain,
        chosen_password: &str,
    ) -> Result<AccountRef, SystemError> {
        match self.run_flow(
            browser,
            Some(phone),
            None,
            FlowSpec::StoreChosen {
                username,
                domain,
                chosen_password: chosen_password.to_string(),
            },
            1,
            None,
        )? {
            SessionOutcome::Stored { account } => Ok(account),
            _ => Err(SystemError::MissingReply {
                expected: "ChosenPasswordStored",
            }),
        }
    }

    /// Session-mechanism extension (§VIII): the user enables a generation
    /// session on the phone; the grant travels to the server and subsequent
    /// generations auto-confirm without phone interaction, up to `max_uses`.
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn enable_generation_session(
        &mut self,
        user_id: &str,
        phone: &str,
        browser: &str,
        max_uses: u32,
    ) -> Result<u32, SystemError> {
        match self.run_flow(
            browser,
            Some(phone),
            Some(user_id),
            FlowSpec::GrantSession {
                user_id: user_id.into(),
                max_uses,
            },
            1,
            None,
        )? {
            SessionOutcome::Granted { remaining_uses } => Ok(remaining_uses),
            _ => Err(SystemError::MissingReply {
                expected: "SessionGranted",
            }),
        }
    }

    /// Phone-compromise recovery (§III-C1), end to end: downloads the cloud
    /// backup, uploads it to the server, collects the regenerated old
    /// passwords, purges the old phone at the rendezvous, installs and pairs
    /// a replacement phone, and re-runs the cloud backup.
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn recover_phone(
        &mut self,
        user_id: &str,
        master_password: &str,
        browser: &str,
        new_phone: &str,
        new_phone_seed: u64,
    ) -> Result<RecoveryOutcome, SystemError> {
        match self.run_flow(
            browser,
            None,
            Some(user_id),
            FlowSpec::Recover {
                user_id: user_id.into(),
                master_password: master_password.into(),
            },
            1,
            Some((new_phone.to_string(), new_phone_seed)),
        )? {
            SessionOutcome::Recovered { credentials } => Ok(RecoveryOutcome { credentials }),
            _ => Err(SystemError::MissingReply {
                expected: "PhoneRecovered",
            }),
        }
    }

    /// Master-password-compromise recovery (§III-C2): the phone proves
    /// possession of `Pid` and the master password changes.
    ///
    /// # Errors
    ///
    /// Propagates rejections anywhere along the flow.
    pub fn change_master_password(
        &mut self,
        user_id: &str,
        old_master_password: &str,
        new_master_password: &str,
        browser: &str,
        phone: &str,
    ) -> Result<(), SystemError> {
        let pid = self
            .phones
            .get(phone)
            .ok_or_else(|| SystemError::UnknownComponent {
                endpoint: phone.into(),
            })?
            .pid()
            .clone();
        match self.run_flow(
            browser,
            Some(phone),
            Some(user_id),
            FlowSpec::ChangeMasterPassword {
                user_id: user_id.into(),
                old_master_password: old_master_password.into(),
                new_master_password: new_master_password.into(),
                pid,
            },
            1,
            None,
        )? {
            SessionOutcome::MasterPasswordChanged => Ok(()),
            _ => Err(SystemError::MissingReply {
                expected: "MasterPasswordChanged",
            }),
        }
    }

    // -- accessors -----------------------------------------------------------------

    /// The deployment configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The seed the Amnesia server was constructed with (drawn from the
    /// deployment seed), for building a byte-identical server in another
    /// runtime.
    pub fn server_seed(&self) -> u64 {
        self.server_seed
    }

    /// The simulated network (attach wiretaps here).
    pub fn net_mut(&mut self) -> &mut SimNet {
        &mut self.net
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.net.now()
    }

    /// The Amnesia server.
    pub fn server(&self) -> &AmnesiaServer {
        &self.server
    }

    /// Mutable access to the server (attack models, direct inspection).
    pub fn server_mut(&mut self) -> &mut AmnesiaServer {
        &mut self.server
    }

    /// The rendezvous service.
    pub fn gcm_mut(&mut self) -> &mut RendezvousServer {
        &mut self.gcm
    }

    /// The cloud provider.
    pub fn cloud_mut(&mut self) -> &mut CloudProvider {
        &mut self.cloud
    }

    /// A phone agent by endpoint name.
    pub fn phone(&self, name: &str) -> Option<&AmnesiaPhone> {
        self.phones.get(name)
    }

    /// Mutable phone access (confirmation policies, compromise models).
    pub fn phone_mut(&mut self, name: &str) -> Option<&mut AmnesiaPhone> {
        self.phones.get_mut(name)
    }

    /// A browser by endpoint name.
    pub fn browser_ref(&self, name: &str) -> Option<&Browser> {
        self.browsers.get(name)
    }

    /// Measured generation latencies, in completion order (the Figure 3
    /// samples).
    pub fn generation_latencies(&self) -> &[SimDuration] {
        &self.generation_latencies
    }

    /// Dispatch faults recorded during pumping (dropped/rejected traffic).
    pub fn faults(&self) -> &[String] {
        &self.faults
    }

    /// The deployment-wide metrics registry. Every component — network,
    /// server, rendezvous, phones — records into this one registry, so a
    /// single [`snapshot`](Registry::snapshot) covers the whole deployment.
    ///
    /// The crypto crate is dependency-free and cannot record directly;
    /// its process-wide hot-path stats are mirrored in here on every
    /// access, so reports and snapshots always carry the current
    /// `crypto.hmac.keys_created` and `crypto.kdf.{cpu,memhard}.derivations`
    /// counts plus the `crypto.pbkdf2.threads` and
    /// `crypto.scrypt.lane_workers` fan-out widths.
    pub fn telemetry(&self) -> &Registry {
        // Counters are monotonic: add only the delta since the last mirror.
        for (name, current) in [
            (
                "crypto.hmac.keys_created",
                amnesia_crypto::stats::hmac_keys_created(),
            ),
            (
                "crypto.kdf.cpu.derivations",
                amnesia_crypto::stats::kdf_cpu_derivations(),
            ),
            (
                "crypto.kdf.memhard.derivations",
                amnesia_crypto::stats::kdf_memhard_derivations(),
            ),
        ] {
            let counter = self.telemetry.counter(name);
            counter.add(current.saturating_sub(counter.get()));
        }
        self.telemetry
            .gauge("crypto.pbkdf2.threads")
            .set_u64(amnesia_crypto::stats::pbkdf2_threads());
        self.telemetry
            .gauge("crypto.scrypt.lane_workers")
            .set_u64(amnesia_crypto::stats::scrypt_lane_workers());
        &self.telemetry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetProfile;
    use amnesia_phone::ConfirmPolicy;

    fn small() -> SystemConfig {
        SystemConfig::default().with_table_size(64)
    }

    fn setup() -> (AmnesiaSystem, Username, Domain) {
        let mut sys = AmnesiaSystem::new(small().with_seed(1));
        sys.add_browser("browser");
        sys.add_phone("phone", 11);
        sys.setup_user("alice", "correct horse", "browser", "phone")
            .unwrap();
        let u = Username::new("Alice").unwrap();
        let d = Domain::new("mail.google.com").unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        (sys, u, d)
    }

    #[test]
    fn full_setup_and_generation() {
        let (mut sys, u, d) = setup();
        let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_eq!(outcome.password.as_str().len(), 32);
        assert_eq!(outcome.account.username, u);
        assert!(outcome.latency > SimDuration::ZERO);
        assert!(sys.faults().is_empty(), "{:?}", sys.faults());

        // Deterministic: a second generation yields the same password.
        let again = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_eq!(outcome.password, again.password);
    }

    #[test]
    fn generation_equals_logical_derivation() {
        let (mut sys, u, d) = setup();
        let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
        let record = sys.server().user_record("alice").unwrap();
        let account = record.find_account(&u, &d).unwrap();
        let expected = amnesia_core::derive_password(
            &account.entry,
            &record.oid,
            sys.phone("phone").unwrap().entry_table(),
            &account.policy,
        )
        .unwrap();
        assert_eq!(outcome.password, expected);
    }

    #[test]
    fn auto_confirm_policy_works_through_push_path() {
        let (mut sys, u, d) = setup();
        sys.phone_mut("phone")
            .unwrap()
            .set_confirm_policy(ConfirmPolicy::AutoConfirm);
        let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_eq!(outcome.password.as_str().len(), 32);
    }

    #[test]
    fn rejecting_user_blocks_generation() {
        let (mut sys, u, d) = setup();
        sys.phone_mut("phone")
            .unwrap()
            .set_confirm_policy(ConfirmPolicy::AutoReject);
        let err = sys
            .generate_password("browser", "phone", &u, &d)
            .unwrap_err();
        assert!(matches!(err, SystemError::MissingReply { .. }));
    }

    #[test]
    fn seed_rotation_changes_password() {
        let (mut sys, u, d) = setup();
        let before = sys.generate_password("browser", "phone", &u, &d).unwrap();
        sys.rotate_seed("browser", u.clone(), d.clone()).unwrap();
        let after = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_ne!(before.password, after.password);
    }

    #[test]
    fn list_accounts_flow() {
        let (mut sys, u, d) = setup();
        let accounts = sys.list_accounts("browser").unwrap();
        assert_eq!(accounts.len(), 1);
        assert_eq!(accounts[0].username, u);
        assert_eq!(accounts[0].domain, d);
    }

    #[test]
    fn phone_recovery_end_to_end() {
        let (mut sys, u, d) = setup();
        let before = sys.generate_password("browser", "phone", &u, &d).unwrap();

        // The phone is stolen: remove it, recover onto a new device.
        sys.remove_phone("phone");
        let recovery = sys
            .recover_phone("alice", "correct horse", "browser", "phone-2", 999)
            .unwrap();
        assert_eq!(recovery.credentials.len(), 1);
        // The recovered (old) password matches what the user had.
        assert_eq!(recovery.credentials[0].old_password, before.password);

        // Generating with the new phone produces a *different* password
        // (new entry table), restoring bilateral security.
        let after = sys.generate_password("browser", "phone-2", &u, &d).unwrap();
        assert_ne!(after.password, before.password);
    }

    #[test]
    fn master_password_change_end_to_end() {
        let (mut sys, _, _) = setup();
        sys.change_master_password("alice", "correct horse", "new mp", "browser", "phone")
            .unwrap();
        // Old password no longer logs in; the new one does.
        assert!(sys.login("browser", "alice", "correct horse").is_err());
        sys.login("browser", "alice", "new mp").unwrap();
    }

    #[test]
    fn wrong_master_password_rejected_over_wire() {
        let mut sys = AmnesiaSystem::new(small().with_seed(2));
        sys.add_browser("browser");
        sys.add_phone("phone", 3);
        sys.setup_user("bob", "mp", "browser", "phone").unwrap();
        let err = sys.login("browser", "bob", "wrong").unwrap_err();
        assert!(matches!(err, SystemError::ServerRejected { .. }));
    }

    #[test]
    fn wiretap_on_https_sees_only_ciphertext() {
        let mut sys = AmnesiaSystem::new(small().with_seed(3));
        sys.add_browser("browser");
        sys.add_phone("phone", 4);
        let tap = sys.net_mut().tap("browser", SERVER_ENDPOINT).unwrap();
        sys.setup_user("carol", "super secret mp", "browser", "phone")
            .unwrap();
        assert!(!tap.is_empty());
        for record in tap.records() {
            assert!(
                !record
                    .payload
                    .windows(b"super secret mp".len())
                    .any(|w| w == b"super secret mp"),
                "master password visible on the wire"
            );
        }
    }

    #[test]
    fn insecure_channels_expose_plaintext() {
        // Ablation: with secure_channels off the same tap sees the secret.
        let mut sys = AmnesiaSystem::new(small().with_seed(4).with_secure_channels(false));
        sys.add_browser("browser");
        sys.add_phone("phone", 5);
        let tap = sys.net_mut().tap("browser", SERVER_ENDPOINT).unwrap();
        sys.setup_user("dave", "super secret mp", "browser", "phone")
            .unwrap();
        let seen = tap.records().iter().any(|r| {
            r.payload
                .windows(b"super secret mp".len())
                .any(|w| w == b"super secret mp")
        });
        assert!(seen, "plaintext should be visible without channel crypto");
    }

    #[test]
    fn latency_accumulates_per_generation() {
        let mut sys = AmnesiaSystem::new(small().with_seed(5).with_profile(NetProfile::wifi()));
        sys.add_browser("browser");
        sys.add_phone("phone", 6);
        sys.setup_user("erin", "mp", "browser", "phone").unwrap();
        let u = Username::new("erin").unwrap();
        let d = Domain::new("site.com").unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        for _ in 0..5 {
            sys.generate_password("browser", "phone", &u, &d).unwrap();
        }
        assert_eq!(sys.generation_latencies().len(), 5);
        for l in sys.generation_latencies() {
            // Plausible wifi-profile window.
            let ms = l.as_millis_f64();
            assert!((200.0..2000.0).contains(&ms), "latency {ms}ms");
        }
    }

    #[test]
    fn outcome_latency_is_the_sessions_own_window() {
        // The latency on each outcome must match the recorded sample for
        // that generation, not the last one that happened to complete.
        let mut sys = AmnesiaSystem::new(small().with_seed(9).with_profile(NetProfile::wifi()));
        sys.add_browser("browser");
        sys.add_phone("phone", 6);
        sys.setup_user("erin", "mp", "browser", "phone").unwrap();
        let u = Username::new("erin").unwrap();
        let d = Domain::new("site.com").unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        let mut latencies = Vec::new();
        for _ in 0..4 {
            latencies.push(
                sys.generate_password("browser", "phone", &u, &d)
                    .unwrap()
                    .latency,
            );
        }
        assert_eq!(latencies.as_slice(), sys.generation_latencies());
    }

    #[test]
    fn concurrent_generations_complete_with_distinct_passwords() {
        let mut sys = AmnesiaSystem::new(small().with_seed(21));
        sys.add_browser("browser");
        sys.add_phone("phone", 7);
        sys.setup_user("alice", "mp", "browser", "phone").unwrap();
        sys.phone_mut("phone")
            .unwrap()
            .set_confirm_policy(ConfirmPolicy::AutoConfirm);
        let accounts: Vec<(Username, Domain)> = (0..8)
            .map(|i| {
                let u = Username::new(format!("user{i}")).unwrap();
                let d = Domain::new(format!("site{i}.example.com")).unwrap();
                sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
                    .unwrap();
                (u, d)
            })
            .collect();
        let requests: Vec<GenerationRequest> = accounts
            .iter()
            .map(|(u, d)| GenerationRequest {
                browser: "browser".into(),
                phone: "phone".into(),
                username: u.clone(),
                domain: d.clone(),
            })
            .collect();
        let results = sys.generate_passwords_concurrent(&requests, 1);
        assert_eq!(results.len(), 8);
        for (result, (u, _)) in results.iter().zip(&accounts) {
            let outcome = result.as_ref().unwrap();
            assert_eq!(&outcome.account.username, u);
            // Each session got its own attributed latency.
            assert!(outcome.latency > SimDuration::ZERO);
        }
        // Batch results agree with sequential regeneration.
        for (result, (u, d)) in results.iter().zip(&accounts) {
            let sequential = sys.generate_password("browser", "phone", u, d).unwrap();
            assert_eq!(result.as_ref().unwrap().password, sequential.password);
        }
    }

    #[test]
    fn telemetry_covers_every_component_and_step() {
        let (mut sys, u, d) = setup();
        for _ in 0..3 {
            sys.generate_password("browser", "phone", &u, &d).unwrap();
        }
        let snapshot = sys.telemetry().snapshot();

        // Counters from all four instrumented components.
        assert!(snapshot.counters["net.frames_sent"] > 0);
        assert_eq!(snapshot.counters["server.requests_pushed"], 3);
        assert_eq!(snapshot.counters["rendezvous.push_forwarded"], 3);
        assert_eq!(snapshot.counters["phone.pushes_received"], 3);
        assert_eq!(snapshot.counters["phone.tokens_computed"], 3);
        assert_eq!(snapshot.counters["system.generations"], 3);

        // No generation is left in flight once the flows return.
        assert_eq!(snapshot.gauges["system.session.inflight"], 0);

        // Every protocol step of Fig. 1 has a latency histogram with one
        // sample per generation, plus the end-to-end measures.
        for step in [
            "steps.step1_request_upload_us",
            "steps.step2_server_to_gcm_us",
            "steps.step3_push_delivery_us",
            "steps.step4_token_upload_us",
            "steps.step5_password_compute_us",
            "steps.step6_password_download_us",
            "system.generate_password_us",
            "system.generate_password_e2e_us",
        ] {
            assert_eq!(snapshot.histograms[step].count(), 3, "{step}");
        }

        // The measured window (steps 2–5) is a lower bound on the e2e span,
        // and the per-step legs sum to less than the e2e total.
        let window = snapshot.histograms["system.generate_password_us"]
            .mean()
            .unwrap();
        let e2e = snapshot.histograms["system.generate_password_e2e_us"]
            .mean()
            .unwrap();
        assert!(
            window < e2e,
            "window {window}us should be within e2e {e2e}us"
        );

        // Confirm latency was recorded via the confirm path under the
        // Manual policy.
        assert_eq!(snapshot.histograms["phone.confirm_latency_us"].count(), 3);

        // Crypto hot-path stats are mirrored into the deployment registry:
        // setup + generations key HMACs (channel keys, verifiers, DRBG), and
        // at least one PBKDF2 derivation ran (width >= 1).
        assert!(snapshot.counters["crypto.hmac.keys_created"] > 0);
        assert!(snapshot.gauges["crypto.pbkdf2.threads"] >= 1);
    }

    #[test]
    fn retry_counter_tracks_lossy_push_attempts() {
        let mut sys = AmnesiaSystem::new(
            small()
                .with_seed(77)
                .with_profile(NetProfile::wifi().with_push_drop_probability(1.0)),
        );
        sys.add_browser("browser");
        sys.add_phone("phone", 8);
        sys.setup_user("frank", "mp", "browser", "phone").unwrap();
        let u = Username::new("frank").unwrap();
        let d = Domain::new("site.com").unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        // Every push drops, so all 3 attempts fail and 2 retries are counted.
        sys.generate_password_with_retry("browser", "phone", &u, &d, 3)
            .unwrap_err();
        let snapshot = sys.telemetry().snapshot();
        assert_eq!(snapshot.counters["system.generation_retries"], 2);
        assert!(snapshot.counters["net.frames_dropped"] >= 3);
        assert_eq!(snapshot.counters.get("system.generations"), None);
    }

    #[test]
    fn timeouts_are_counted_per_session() {
        let (mut sys, u, d) = setup();
        sys.phone_mut("phone")
            .unwrap()
            .set_confirm_policy(ConfirmPolicy::AutoReject);
        sys.generate_password("browser", "phone", &u, &d)
            .unwrap_err();
        let snapshot = sys.telemetry().snapshot();
        assert_eq!(snapshot.counters["system.session.timeouts"], 1);
        assert_eq!(snapshot.gauges["system.session.inflight"], 0);
    }
}
