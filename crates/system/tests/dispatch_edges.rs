//! Edge cases of the deployment's dispatch and configuration layer.

use amnesia_core::{Domain, PasswordPolicy, Username};
use amnesia_system::{AmnesiaSystem, NetProfile, SystemConfig, GCM_ENDPOINT, SERVER_ENDPOINT};

fn base(seed: u64) -> AmnesiaSystem {
    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(seed).with_table_size(64));
    sys.add_browser("browser");
    sys.add_phone("phone", seed + 1);
    sys.setup_user("alice", "mp", "browser", "phone").unwrap();
    sys
}

#[test]
fn frames_to_a_removed_phone_become_faults_not_panics() {
    let mut sys = base(1);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("gone.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();

    // The phone vanishes (powered off / stolen) but its endpoint and GCM
    // registration remain — the push is delivered into the void.
    sys.remove_phone("phone");
    let err = sys
        .generate_password("browser", "phone", &u, &d)
        .unwrap_err();
    // The flow fails cleanly with a missing-reply error…
    assert!(err.to_string().contains("PasswordReady"), "{err}");
    // …and the undeliverable push is recorded as a dispatch fault.
    assert!(
        sys.faults().iter().any(|f| f.contains("phone")),
        "push to a dead endpoint must be recorded: {:?}",
        sys.faults()
    );
}

#[test]
fn channel_key_export_unknown_pair_is_none() {
    let sys = base(2);
    assert!(sys
        .export_channel_keys_for_attack_model("nonexistent", SERVER_ENDPOINT)
        .is_none());
    assert!(sys
        .export_channel_keys_for_attack_model("browser", SERVER_ENDPOINT)
        .is_some());
    // The rendezvous legs deliberately have no channel (GCM must read the
    // envelope) — there is nothing to export.
    assert!(sys
        .export_channel_keys_for_attack_model(SERVER_ENDPOINT, GCM_ENDPOINT)
        .is_none());
}

#[test]
fn flows_against_unknown_components_error_cleanly() {
    let mut sys = base(3);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("x.example.com").unwrap();
    assert!(sys
        .generate_password("no-such-browser", "phone", &u, &d)
        .is_err());
    assert!(sys
        .enable_generation_session("alice", "no-such-phone", "browser", 1)
        .is_err());
    assert!(sys
        .store_chosen_password("browser", "no-such-phone", u, d, "pw")
        .is_err());
}

#[test]
fn vault_store_requires_login() {
    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(4).with_table_size(64));
    sys.add_browser("fresh-browser");
    sys.add_phone("phone", 5);
    let err = sys
        .store_chosen_password(
            "fresh-browser",
            "phone",
            Username::new("alice").unwrap(),
            Domain::new("d.example.com").unwrap(),
            "pw",
        )
        .unwrap_err();
    assert!(err.to_string().contains("session"), "{err}");
}

#[test]
#[should_panic(expected = "probability")]
fn invalid_push_drop_probability_panics() {
    let _ = NetProfile::lan().with_push_drop_probability(1.5);
}

#[test]
fn outcome_debug_does_not_leak_nothing_useful() {
    let mut sys = base(6);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("dbg.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
    // GenerationOutcome's Debug goes through GeneratedPassword's redacted
    // Debug — the password text must not appear.
    let dbg = format!("{outcome:?}");
    assert!(!dbg.contains(outcome.password.as_str()));
    assert!(dbg.contains("GenerationOutcome"));
}

#[test]
fn session_grant_for_unknown_user_rejected_over_wire() {
    let mut sys = base(7);
    let err = sys
        .enable_generation_session("nobody", "phone", "browser", 3)
        .unwrap_err();
    assert!(err.to_string().contains("unknown user"), "{err}");
}

#[test]
fn system_debug_summarizes_topology() {
    let sys = base(8);
    let dbg = format!("{sys:?}");
    assert!(dbg.contains("phone"));
    assert!(dbg.contains("browser"));
}
