//! Integration tests for the §VIII extensions: the vault (user-chosen
//! passwords under bilateral encryption) and the session mechanism
//! (one confirmation buys a bounded run of generations).

use amnesia_core::{Domain, PasswordPolicy, Username};
use amnesia_phone::ConfirmPolicy;
use amnesia_server::AccountKind;
use amnesia_system::{AmnesiaSystem, SystemConfig};

fn setup(seed: u64) -> AmnesiaSystem {
    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(seed).with_table_size(128));
    sys.add_browser("browser");
    sys.add_phone("phone", seed + 1);
    sys.setup_user("alice", "master password", "browser", "phone")
        .unwrap();
    sys
}

#[test]
fn vault_stores_and_retrieves_chosen_passwords() {
    let mut sys = setup(1);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("legacy-bank.example.com").unwrap();

    let account = sys
        .store_chosen_password(
            "browser",
            "phone",
            u.clone(),
            d.clone(),
            "my-pre-existing-bank-password",
        )
        .unwrap();
    assert_eq!(account.username, u);

    // Retrieval goes through the full bilateral flow and returns the
    // *chosen* password.
    let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
    assert_eq!(outcome.password.as_str(), "my-pre-existing-bank-password");

    // The vault entry appears in the account list like any other.
    let accounts = sys.list_accounts("browser").unwrap();
    assert_eq!(accounts.len(), 1);
}

#[test]
fn vault_ciphertext_at_rest_is_opaque() {
    let mut sys = setup(2);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("v.example.com").unwrap();
    sys.store_chosen_password(
        "browser",
        "phone",
        u.clone(),
        d.clone(),
        "chosen secret value",
    )
    .unwrap();

    // Server breach: the stored row is AEAD ciphertext, not the password.
    let dump = sys.server().export_data_at_rest_for_attack_model();
    let account = dump[0].find_account(&u, &d).unwrap();
    match &account.kind {
        AccountKind::Vaulted { ciphertext } => {
            let needle = b"chosen secret value";
            assert!(
                !ciphertext
                    .windows(needle.len())
                    .any(|w| w == needle.as_slice()),
                "chosen password visible in data at rest"
            );
            assert!(ciphertext.len() >= needle.len() + 48, "nonce+tag overhead");
        }
        other => panic!("expected vaulted account, found {other:?}"),
    }
}

#[test]
fn vault_entries_survive_phone_recovery() {
    let mut sys = setup(3);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("vr.example.com").unwrap();
    sys.store_chosen_password(
        "browser",
        "phone",
        u.clone(),
        d.clone(),
        "survives recovery",
    )
    .unwrap();

    sys.remove_phone("phone");
    let recovery = sys
        .recover_phone("alice", "master password", "browser", "phone-2", 33)
        .unwrap();
    // The recovered credential for the vault entry is the chosen password
    // itself (decrypted with the uploaded old table).
    assert_eq!(
        recovery.credentials[0].old_password.as_str(),
        "survives recovery"
    );
}

#[test]
fn vault_store_rejects_duplicate_accounts() {
    let mut sys = setup(4);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("dup.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    let err = sys
        .store_chosen_password("browser", "phone", u, d, "x")
        .unwrap_err();
    assert!(err.to_string().contains("already managed"), "{err}");
}

#[test]
fn seed_rotation_refused_for_vaulted_accounts() {
    let mut sys = setup(5);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("norotate.example.com").unwrap();
    sys.store_chosen_password("browser", "phone", u.clone(), d.clone(), "x")
        .unwrap();
    let err = sys.rotate_seed("browser", u, d).unwrap_err();
    assert!(err.to_string().contains("vaulted"), "{err}");
}

#[test]
fn session_grant_skips_phone_interaction_for_exactly_n_uses() {
    let mut sys = setup(6);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("s.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();

    // Manual policy: without a session, generation requires a confirmation.
    sys.phone_mut("phone")
        .unwrap()
        .set_confirm_policy(ConfirmPolicy::Manual);

    let granted = sys
        .enable_generation_session("alice", "phone", "browser", 3)
        .unwrap();
    assert_eq!(granted, 3);

    // Three generations auto-confirm (no pending requests appear).
    for i in 0..3 {
        let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
        assert_eq!(outcome.password.as_str().len(), 32, "use {i}");
    }
    assert_eq!(sys.phone("phone").unwrap().session_grant_remaining(), 0);
    assert_eq!(sys.server().session_grant_remaining("alice"), 0);

    // The fourth generation falls back to manual confirmation — and still
    // succeeds because the flow confirms the pending request.
    let before = sys.phone("phone").unwrap().notifications().len();
    sys.generate_password("browser", "phone", &u, &d).unwrap();
    let after = sys.phone("phone").unwrap().notifications().len();
    assert_eq!(after, before + 1, "fourth push renotifies the user");
}

#[test]
fn session_grants_do_not_transfer_between_phones() {
    let mut sys = setup(7);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("xfer.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    sys.enable_generation_session("alice", "phone", "browser", 2)
        .unwrap();

    // A *different* phone minting its own grant cannot redeem the pushes
    // keyed to the first phone's grant: redeem compares token identity.
    let mut other = amnesia_phone::AmnesiaPhone::new(
        amnesia_phone::PhoneConfig::new("other", 999).with_table_size(64),
    );
    let mut gcm = amnesia_rendezvous::RendezvousServer::new("gcm2", 1);
    other.register_with_rendezvous(&mut gcm);
    // Generation still works against the real phone.
    let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);
}

#[test]
fn revoked_session_falls_back_to_manual() {
    let mut sys = setup(8);
    let u = Username::new("alice").unwrap();
    let d = Domain::new("revoke.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    sys.enable_generation_session("alice", "phone", "browser", 5)
        .unwrap();
    // The user revokes on the device; the server still attaches the grant,
    // but the phone refuses to redeem it and queues a confirmation instead.
    sys.phone_mut("phone").unwrap().revoke_session();
    let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);
    assert_eq!(sys.phone("phone").unwrap().session_grant_remaining(), 0);
}

#[test]
fn vaulted_and_generated_accounts_coexist() {
    let mut sys = setup(9);
    let u = Username::new("alice").unwrap();
    let d_gen = Domain::new("gen.example.com").unwrap();
    let d_vault = Domain::new("vault.example.com").unwrap();
    sys.add_account(
        "browser",
        u.clone(),
        d_gen.clone(),
        PasswordPolicy::default(),
    )
    .unwrap();
    sys.store_chosen_password("browser", "phone", u.clone(), d_vault.clone(), "chosen!")
        .unwrap();

    let generated = sys
        .generate_password("browser", "phone", &u, &d_gen)
        .unwrap();
    let vaulted = sys
        .generate_password("browser", "phone", &u, &d_vault)
        .unwrap();
    assert_eq!(generated.password.as_str().len(), 32);
    assert_eq!(vaulted.password.as_str(), "chosen!");
    assert_eq!(sys.list_accounts("browser").unwrap().len(), 2);
}
