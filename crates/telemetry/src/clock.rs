//! Time sources for spans and latency measurements.
//!
//! Telemetry never reads `std::time` directly: every duration comes from a
//! [`Clock`], so the same instrumentation works against real wall time and
//! against the discrete-event simulated clock in `amnesia-net` (which
//! implements [`Clock`] on its side of the dependency edge).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond counter. Implementations must never go backwards.
pub trait Clock {
    /// Microseconds elapsed since an arbitrary but fixed origin.
    fn now_micros(&self) -> u64;
}

/// Wall-clock time, anchored at the moment the clock was created.
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        let micros = self.origin.elapsed().as_micros();
        u64::try_from(micros).unwrap_or(u64::MAX)
    }
}

/// A hand-driven clock for tests: time only moves when [`ManualClock::advance`]
/// is called. Clones share the same underlying counter.
#[derive(Clone, Debug, Default)]
pub struct ManualClock {
    micros: Arc<AtomicU64>,
}

impl ManualClock {
    /// Creates a manual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `micros` microseconds.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute microsecond value.
    pub fn set(&self, micros: u64) {
        self.micros.store(micros, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

impl<C: Clock + ?Sized> Clock for &C {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }
}

impl<C: Clock + ?Sized> Clock for Arc<C> {
    fn now_micros(&self) -> u64 {
        (**self).now_micros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let clock = WallClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_micros(), 0);
        clock.advance(1500);
        assert_eq!(clock.now_micros(), 1500);
        let shared = clock.clone();
        shared.advance(500);
        assert_eq!(clock.now_micros(), 2000);
        clock.set(10);
        assert_eq!(shared.now_micros(), 10);
    }
}
