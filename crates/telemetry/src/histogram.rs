//! Log-scale latency histogram with bounded relative error.
//!
//! The histogram covers the full `u64` range with a fixed 1920-slot bucket
//! array: values below 32 land in exact unit-width buckets, and every octave
//! above that is split into 32 sub-buckets, bounding the relative width of any
//! bucket by 1/32 (~3.1%). Quantile queries therefore return an interval
//! `[lo, hi]` that is guaranteed to bracket the true order statistic, which is
//! the property the `testkit` suite checks against brute-force sorting.

/// Number of sub-bucket bits per octave. 32 sub-buckets per power of two
/// bounds the relative error of any reported quantile by 1/32.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave (`2^SUB_BITS`).
const SUB_COUNT: usize = 1 << SUB_BITS;
/// Values below this are stored in exact unit-width buckets.
const LINEAR_LIMIT: u64 = SUB_COUNT as u64;
/// Total bucket count: one exact bucket per value below [`LINEAR_LIMIT`],
/// then `SUB_COUNT` buckets for each of the remaining `64 - SUB_BITS` octaves.
const BUCKETS: usize = SUB_COUNT + (64 - SUB_BITS as usize) * SUB_COUNT;

/// A mergeable log-scale histogram of `u64` samples (typically microseconds).
///
/// Recording is O(1); quantile extraction walks the bucket array. `count`,
/// `sum`, `min`, and `max` are tracked exactly, so the mean is exact and only
/// intermediate quantiles are subject to the ~3.1% bucket-width error.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
            && self.counts[..] == other.counts[..]
    }
}

impl Eq for Histogram {}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

/// Bucket index for a value: exact below [`LINEAR_LIMIT`], otherwise the
/// octave (position of the most significant bit) selects a group of
/// [`SUB_COUNT`] buckets and the next [`SUB_BITS`] bits select within it.
fn bucket_index(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        let sub = (value >> shift) as usize - SUB_COUNT;
        SUB_COUNT + shift as usize * SUB_COUNT + sub
    }
}

/// Inclusive `[lo, hi]` value range covered by a bucket index.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_COUNT {
        (index as u64, index as u64)
    } else {
        let shift = ((index - SUB_COUNT) / SUB_COUNT) as u32;
        let sub = ((index - SUB_COUNT) % SUB_COUNT) as u64;
        let lo = (SUB_COUNT as u64 + sub) << shift;
        (lo, lo + ((1u64 << shift) - 1))
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0u64; BUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += u128::from(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns true if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded sample, or `None` if empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, or `None` if empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| (self.sum / u128::from(self.count)) as u64)
    }

    /// Inclusive `[lo, hi]` interval bracketing the `q`-quantile
    /// (`0.0 < q <= 1.0`), tightened by the exact min/max. The true order
    /// statistic of rank `ceil(q * count)` is guaranteed to lie inside it.
    /// Returns `None` if the histogram is empty.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the order statistic we bracket, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = bucket_bounds(index);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        // Unreachable: `seen` reaches `self.count >= rank` within the loop.
        Some((self.min, self.max))
    }

    /// A representative value for the `q`-quantile: the upper bound of the
    /// bracketing bucket (at most ~3.1% above the true order statistic).
    /// Returns `None` if the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.quantile_bounds(q).map(|(_, hi)| hi)
    }

    /// Adds every sample of `other` into `self`. Merging two histograms is
    /// exactly equivalent to recording the concatenation of their samples.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 5, 8, 13, 21, 31] {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 1.0] {
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert_eq!(lo, hi, "values < 32 land in unit buckets");
        }
        assert_eq!(h.quantile(0.5).unwrap(), 5);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(31));
    }

    #[test]
    fn bucket_index_and_bounds_agree() {
        for v in (0..10_000u64).chain([u64::MAX, u64::MAX - 1, 1 << 40, (1 << 40) + 12345]) {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "value {v} outside bucket [{lo}, {hi}]");
            // Relative bucket width is bounded by 1/32.
            assert!(hi - lo <= lo / 32 + 1, "bucket [{lo}, {hi}] too wide");
        }
    }

    #[test]
    fn extreme_value_is_representable() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.max(), Some(u64::MAX));
        let (lo, hi) = h.quantile_bounds(1.0).unwrap();
        assert!(lo <= u64::MAX && hi == u64::MAX);
    }

    #[test]
    fn quantiles_bracket_sorted_rank() {
        let samples: Vec<u64> = (0..1000).map(|i| i * i * 7 + 3).collect();
        let mut h = Histogram::new();
        let mut sorted = samples.clone();
        for &s in &samples {
            h.record(s);
        }
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
            let truth = sorted[rank - 1];
            let (lo, hi) = h.quantile_bounds(q).unwrap();
            assert!(
                lo <= truth && truth <= hi,
                "q={q}: {truth} not in [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn merge_equals_concatenation() {
        let (a_samples, b_samples): (Vec<u64>, Vec<u64>) = (
            (0..100).map(|i| i * 31 + 1).collect(),
            (0..77).map(|i| i * i + 40_000).collect(),
        );
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &s in &a_samples {
            a.record(s);
            both.record(s);
        }
        for &s in &b_samples {
            b.record(s);
            both.record(s);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
