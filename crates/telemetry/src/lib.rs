//! Zero-dependency metrics and tracing for the Amnesia reproduction.
//!
//! The paper's evaluation (Fig. 3 latency under Wifi/4G, Tables I–III) is a
//! measurement story; this crate gives every component a first-class way to
//! report what it did. It provides:
//!
//! - [`Registry`] — a cloneable handle to a shared table of named metrics;
//! - [`Counter`] / [`Gauge`] — lock-free monotonic and instantaneous values;
//! - [`Histogram`] — a log-scale latency histogram with exact count/sum/
//!   min/max and quantile *bounds* with ≤ 1/32 relative bucket width;
//! - [`Span`] / [`span!`] — scope guards that time a region against any
//!   [`Clock`], wall or simulated;
//! - [`Snapshot`] and a stable JSON rendering for bench bins and tooling.
//!
//! # Usage
//!
//! ```
//! use amnesia_telemetry::{ManualClock, Registry};
//!
//! let registry = Registry::new();
//! let clock = ManualClock::new();
//!
//! registry.counter("net.frames_sent").inc();
//! registry.gauge("server.pending_requests").set(1);
//! {
//!     let _span = amnesia_telemetry::span!(&registry, "server.derive_R", &clock);
//!     clock.advance(850); // stand-in for real work
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counters["net.frames_sent"], 1);
//! assert_eq!(snapshot.histograms["server.derive_R"].quantile(0.5), Some(850));
//! println!("{}", snapshot.to_json());
//! ```
//!
//! Components in this workspace each hold a `Registry` clone injected by
//! `amnesia-system`, so one snapshot covers the network, server, rendezvous
//! point, and phones of a deployment at once; `amnesia-net`'s `SimClock`
//! implements [`Clock`], so spans measure simulated time in the same unit
//! (microseconds) as wall time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod histogram;
mod registry;
mod report;

pub use clock::{Clock, ManualClock, WallClock};
pub use histogram::Histogram;
pub use registry::{Counter, Gauge, HistogramHandle, Registry, Span};
pub use report::{histogram_json, json_string, Snapshot};
