//! Process-wide registry of named metrics.
//!
//! A [`Registry`] is a cheaply cloneable handle to a shared table of named
//! [`Counter`]s, [`Gauge`]s, and [`Histogram`](crate::Histogram)s. Components
//! hold their own clone and record into it; a snapshot or JSON report reads a
//! consistent view of all three tables at once. Lookup happens once per
//! metric handle (`counter("net.frames_sent")`), after which recording is a
//! single atomic operation (counters/gauges) or a short mutex-guarded bucket
//! increment (histograms).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::Clock;
use crate::histogram::Histogram;
use crate::report::Snapshot;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, map sizes).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the gauge to an absolute value.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Sets the gauge from an unsigned count, saturating at `i64::MAX`
    /// instead of wrapping (queue depths and map sizes are `usize` at the
    /// call sites; a silent `as i64` reinterpretation would report a huge
    /// depth as negative).
    pub fn set_usize(&self, value: usize) {
        self.set(i64::try_from(value).unwrap_or(i64::MAX));
    }

    /// Sets the gauge from a `u64` count, saturating at `i64::MAX`.
    pub fn set_u64(&self, value: u64) {
        self.set(i64::try_from(value).unwrap_or(i64::MAX));
    }

    /// Raises the gauge to `value` if it exceeds the current reading
    /// (a saturating high-water mark).
    pub fn set_max_u64(&self, value: u64) {
        let v = i64::try_from(value).unwrap_or(i64::MAX);
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta to the gauge.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared handle to a named [`Histogram`].
#[derive(Clone, Debug, Default)]
pub struct HistogramHandle(Arc<Mutex<Histogram>>);

impl HistogramHandle {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.lock().record(value);
    }

    /// Copies out the current histogram state.
    pub fn snapshot(&self) -> Histogram {
        self.lock().clone()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Histogram> {
        self.0
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, HistogramHandle>,
}

/// Cloneable handle to a shared metrics table. See the module docs.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.lock();
        f.debug_struct("Registry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide default registry used by the [`span!`](crate::span!)
    /// macro. Created on first use; lives for the rest of the process.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Returns the counter registered under `name`, creating it if needed.
    pub fn counter(&self, name: &str) -> Counter {
        self.lock()
            .counters
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge registered under `name`, creating it if needed.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.lock()
            .gauges
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram registered under `name`, creating it if needed.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Records one sample into the histogram named `name`.
    pub fn record(&self, name: &str, value: u64) {
        self.histogram(name).record(value);
    }

    /// Starts a span that records its duration (in microseconds, as measured
    /// by `clock`) into the histogram named `name` when dropped or
    /// [`finish`](Span::finish)ed.
    pub fn span<C: Clock>(&self, name: &str, clock: C) -> Span<C> {
        Span {
            histogram: self.histogram(name),
            started_at: clock.now_micros(),
            clock,
            done: false,
        }
    }

    /// Reads a consistent snapshot of every registered metric.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, c)| (name.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, g)| (name.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Resets every registered metric to its empty state, keeping the handles
    /// other components already hold valid and connected.
    pub fn reset(&self) {
        let inner = self.lock();
        for counter in inner.counters.values() {
            counter.0.store(0, Ordering::Relaxed);
        }
        for gauge in inner.gauges.values() {
            gauge.0.store(0, Ordering::Relaxed);
        }
        for histogram in inner.histograms.values() {
            *histogram.lock() = Histogram::new();
        }
    }
}

/// An in-flight timing measurement. Records the elapsed microseconds into its
/// histogram exactly once, either on [`finish`](Span::finish) or on drop.
#[must_use = "a span measures the time until it is dropped or finished"]
pub struct Span<C: Clock> {
    histogram: HistogramHandle,
    started_at: u64,
    clock: C,
    done: bool,
}

impl<C: Clock> Span<C> {
    /// Ends the span now and returns the elapsed microseconds.
    pub fn finish(mut self) -> u64 {
        self.record_once()
    }

    /// Drops the span without recording anything.
    pub fn cancel(mut self) {
        self.done = true;
    }

    fn record_once(&mut self) -> u64 {
        if self.done {
            return 0;
        }
        self.done = true;
        let elapsed = self.clock.now_micros().saturating_sub(self.started_at);
        self.histogram.record(elapsed);
        elapsed
    }
}

impl<C: Clock> Drop for Span<C> {
    fn drop(&mut self) {
        self.record_once();
    }
}

/// Times the enclosing scope against the global registry's wall clock.
///
/// `span!("server.derive_R")` returns a guard; the elapsed wall time in
/// microseconds is recorded into the global histogram of that name when the
/// guard goes out of scope. Pass a registry and/or clock explicitly to record
/// elsewhere: `span!(registry, "name")` or `span!(registry, "name", clock)`.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Registry::global().span($name, $crate::WallClock::new())
    };
    ($registry:expr, $name:expr) => {
        ($registry).span($name, $crate::WallClock::new())
    };
    ($registry:expr, $name:expr, $clock:expr) => {
        ($registry).span($name, $clock)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn counters_and_gauges_are_shared_by_name() {
        let registry = Registry::new();
        registry.counter("hits").inc();
        registry.counter("hits").add(4);
        assert_eq!(registry.counter("hits").get(), 5);

        registry.gauge("depth").set(7);
        registry.gauge("depth").add(-3);
        assert_eq!(registry.gauge("depth").get(), 4);
    }

    #[test]
    fn span_records_elapsed_micros_on_drop() {
        let registry = Registry::new();
        let clock = ManualClock::new();
        {
            let _span = registry.span("op", clock.clone());
            clock.advance(250);
        }
        let h = registry.histogram("op").snapshot();
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(250));
    }

    #[test]
    fn finished_span_does_not_double_record() {
        let registry = Registry::new();
        let clock = ManualClock::new();
        let span = registry.span("op", clock.clone());
        clock.advance(10);
        assert_eq!(span.finish(), 10);
        assert_eq!(registry.histogram("op").snapshot().count(), 1);
    }

    #[test]
    fn cancelled_span_records_nothing() {
        let registry = Registry::new();
        let span = registry.span("op", ManualClock::new());
        span.cancel();
        assert_eq!(registry.histogram("op").snapshot().count(), 0);
    }

    #[test]
    fn reset_zeroes_existing_handles() {
        let registry = Registry::new();
        let counter = registry.counter("c");
        counter.add(9);
        registry.record("h", 42);
        registry.reset();
        assert_eq!(counter.get(), 0);
        assert_eq!(registry.histogram("h").snapshot().count(), 0);
        counter.inc();
        assert_eq!(registry.counter("c").get(), 1, "handles stay connected");
    }

    #[test]
    fn clones_share_the_same_tables() {
        let registry = Registry::new();
        let clone = registry.clone();
        clone.counter("shared").inc();
        assert_eq!(registry.counter("shared").get(), 1);
    }
}
