//! Point-in-time metric snapshots and their JSON rendering.
//!
//! The JSON schema is deliberately flat and stable so bench bins and external
//! tooling can consume it without a parser generator:
//!
//! ```json
//! {
//!   "counters": {"net.frames_sent": 12},
//!   "gauges": {"server.pending_requests": 0},
//!   "histograms": {
//!     "system.generate_password_us": {
//!       "count": 100, "min_us": 701234, "max_us": 912345,
//!       "mean_us": 785300, "p50_us": 780000, "p90_us": 860000,
//!       "p99_us": 900000
//!     }
//!   }
//! }
//! ```
//!
//! Keys are emitted in sorted order (the tables are `BTreeMap`s), so two
//! snapshots of the same run render byte-identically.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::histogram::Histogram;

/// A consistent copy of every metric in a
/// [`Registry`](crate::Registry) at one instant.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Full histogram state by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// Renders the snapshot as a compact single-line JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, &self.counters, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, &self.gauges, |out, v| {
            let _ = write!(out, "{v}");
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, &self.histograms, |out, h| {
            out.push_str(&histogram_json(h));
        });
        out.push_str("}}");
        out
    }
}

fn push_entries<V>(
    out: &mut String,
    entries: &BTreeMap<String, V>,
    mut render: impl FnMut(&mut String, &V),
) {
    for (i, (name, value)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(name));
        out.push(':');
        render(out, value);
    }
}

/// Renders one histogram as a JSON object with count, min/max/mean, and the
/// p50/p90/p99 representative quantiles, all in the recorded unit
/// (microseconds by convention). An empty histogram renders `{"count":0}`.
pub fn histogram_json(h: &Histogram) -> String {
    // All five accessors return Some exactly when the histogram is
    // non-empty, so the one empty render covers every None.
    let stats = (
        h.min(),
        h.max(),
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.90),
        h.quantile(0.99),
    );
    let (Some(min), Some(max), Some(mean), Some(p50), Some(p90), Some(p99)) = stats else {
        return String::from("{\"count\":0}");
    };
    format!(
        "{{\"count\":{},\"min_us\":{min},\"max_us\":{max},\"mean_us\":{mean},\
         \"p50_us\":{p50},\"p90_us\":{p90},\"p99_us\":{p99}}}",
        h.count(),
    )
}

/// Escapes `s` as a JSON string literal, including the surrounding quotes.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn snapshot_renders_all_sections() {
        let registry = Registry::new();
        registry.counter("a.count").add(3);
        registry.gauge("b.depth").set(-2);
        registry.record("c.latency_us", 100);
        registry.record("c.latency_us", 200);
        let json = registry.snapshot().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"a.count\":3"));
        assert!(json.contains("\"b.depth\":-2"));
        assert!(json.contains("\"c.latency_us\":{\"count\":2,\"min_us\":100"));
        assert!(json.ends_with("}}"));
    }

    #[test]
    fn empty_snapshot_is_valid_json_skeleton() {
        let json = Registry::new().snapshot().to_json();
        assert_eq!(json, "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
    }

    #[test]
    fn empty_histogram_renders_count_zero() {
        assert_eq!(histogram_json(&Histogram::new()), "{\"count\":0}");
    }
}
