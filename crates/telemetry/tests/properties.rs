//! Property tests for the log-scale histogram, checked against brute force.

use amnesia_telemetry::Histogram;
use amnesia_testkit::{for_all, require, require_eq, Gen};

/// Draws a sample set spanning several orders of magnitude, including the
/// exact low range, mid-range values, and occasional huge outliers.
fn arbitrary_samples(g: &mut Gen) -> Vec<u64> {
    let len = g.usize_in(1, 400);
    g.vec_of(len, |g| match g.usize_in(0, 3) {
        0 => g.u64_in(0, 31),
        1 => g.u64_in(32, 10_000),
        2 => g.u64_in(10_000, 10_000_000),
        _ => g.u64_in(10_000_000, u64::MAX),
    })
}

#[test]
fn quantile_bounds_bracket_true_order_statistic() {
    for_all("quantile_bounds_bracket", 200, |g| {
        let samples = arbitrary_samples(g);
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        for &q in &[0.01, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let (lo, hi) = h
                .quantile_bounds(q)
                .ok_or_else(|| "non-empty histogram returned no bounds".to_string())?;
            require!(
                lo <= truth && truth <= hi,
                "q={q}: true order statistic {truth} outside [{lo}, {hi}] (n={})",
                sorted.len()
            );
            // The reported interval must respect the 1/32 relative-width
            // guarantee (up to the ±1 of the unit buckets).
            require!(
                hi - lo <= lo / 32 + 1,
                "q={q}: interval [{lo}, {hi}] wider than one sub-bucket"
            );
        }
        Ok(())
    });
}

#[test]
fn exact_statistics_match_brute_force() {
    for_all("exact_statistics", 200, |g| {
        let samples = arbitrary_samples(g);
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        require_eq!(h.count(), samples.len() as u64);
        require_eq!(h.min(), samples.iter().copied().min());
        require_eq!(h.max(), samples.iter().copied().max());
        let sum: u128 = samples.iter().map(|&s| u128::from(s)).sum();
        require_eq!(h.sum(), sum);
        require_eq!(h.mean(), Some((sum / samples.len() as u128) as u64));
        Ok(())
    });
}

#[test]
fn merge_equals_histogram_of_concatenation() {
    for_all("merge_is_concatenation", 200, |g| {
        let left = arbitrary_samples(g);
        let right = if g.next_bool() {
            arbitrary_samples(g)
        } else {
            Vec::new() // merging an empty histogram must be the identity
        };

        let mut merged = Histogram::new();
        for &s in &left {
            merged.record(s);
        }
        let mut other = Histogram::new();
        for &s in &right {
            other.record(s);
        }
        merged.merge(&other);

        let mut concatenated = Histogram::new();
        for &s in left.iter().chain(right.iter()) {
            concatenated.record(s);
        }

        require!(
            merged == concatenated,
            "merge of {} + {} samples differs from direct concatenation",
            left.len(),
            right.len()
        );
        // Spot-check that the agreement extends to derived statistics.
        for &q in &[0.5, 0.9, 0.99] {
            require_eq!(merged.quantile_bounds(q), concatenated.quantile_bounds(q));
        }
        Ok(())
    });
}
