//! Minimal property-based testing harness for the Amnesia workspace.
//!
//! A deliberately small, zero-dependency replacement for an external
//! property-testing framework. It provides:
//!
//! * [`Gen`] — a seeded xorshift64* pseudo-random generator with helpers for
//!   the value shapes the workspace's properties need (ints in ranges, byte
//!   vectors, ASCII strings, picks from slices);
//! * [`for_all`] — a runner that executes a property over many generated
//!   cases, reporting the failing case and its seed;
//! * [`Shrink`] — greedy input shrinking, so failures are reported on the
//!   smallest reproduction the shrinker can reach;
//! * [`require!`]/[`require_eq!`]/[`require_ne!`] — assertion macros that
//!   return an error instead of panicking, so the runner can shrink.
//!
//! Failures are deterministic: the run seed is derived from the property
//! name, so a red property stays red until the code (or the property)
//! changes.
//!
//! ```
//! use amnesia_testkit::{for_all, require, Gen};
//!
//! for_all("addition commutes", 64, |g: &mut Gen| {
//!     let (a, b) = (g.next_u64() >> 1, g.next_u64() >> 1);
//!     require!(a + b == b + a, "a={a} b={b}");
//!     Ok(())
//! });
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A property's verdict on one input: `Ok(())` passes, `Err(msg)` fails with
/// a human-readable reason.
pub type PropResult = Result<(), String>;

/// Seeded xorshift64* pseudo-random generator.
///
/// Not cryptographic — it only drives test-case generation, where speed and
/// reproducibility matter and unpredictability does not.
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from `seed` (zero is remapped, xorshift requires
    /// nonzero state).
    pub fn new(seed: u64) -> Self {
        Gen {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    /// Uniform `u8`.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// Uniform `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Uniform `usize` in `lo..=hi` (inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform `u64` in `lo..=hi` (inclusive).
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range {lo}..={hi}");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return self.next_u64(); // full range
        }
        lo + self.next_u64() % span
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64_unit() * (hi - lo)
    }

    /// `len` uniform random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u8()).collect()
    }

    /// A byte vector with length in `0..=max_len`.
    pub fn bytes_upto(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(0, max_len);
        self.bytes(len)
    }

    /// A vector of `len` items drawn from `item`.
    pub fn vec_of<T>(&mut self, len: usize, mut item: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        (0..len).map(|_| item(self)).collect()
    }

    /// A printable-ASCII string with length in `0..=max_len`.
    pub fn ascii_string(&mut self, max_len: usize) -> String {
        let len = self.usize_in(0, max_len);
        (0..len)
            .map(|_| (self.usize_in(0x20, 0x7e) as u8) as char)
            .collect()
    }

    /// A lowercase alphanumeric string with length in `1..=max_len`.
    pub fn ident(&mut self, max_len: usize) -> String {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
        let len = self.usize_in(1, max_len.max(1));
        (0..len)
            .map(|_| ALPHABET[self.usize_in(0, ALPHABET.len() - 1)] as char)
            .collect()
    }

    /// Picks one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize_in(0, items.len() - 1)]
    }
}

/// Types whose failing values can be shrunk toward simpler reproductions.
///
/// `shrink` yields candidate simplifications of `self`, simplest first.
/// The runner keeps any candidate that still fails and repeats greedily.
/// The default implementation yields nothing (no shrinking).
pub trait Shrink: Sized {
    /// Candidate simplifications, simplest first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

impl Shrink for u64 {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if *self != 0 {
            out.push(0);
            out.push(*self / 2);
            out.push(*self - 1);
        }
        out.dedup();
        out
    }
}

impl Shrink for usize {
    fn shrink(&self) -> Vec<Self> {
        (*self as u64)
            .shrink()
            .into_iter()
            .map(|v| v as usize)
            .collect()
    }
}

impl Shrink for u8 {
    fn shrink(&self) -> Vec<Self> {
        (*self as u64)
            .shrink()
            .into_iter()
            .map(|v| v as u8)
            .collect()
    }
}

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl<T: Clone> Shrink for Vec<T> {
    fn shrink(&self) -> Vec<Self> {
        let mut out = Vec::new();
        if self.is_empty() {
            return out;
        }
        out.push(Vec::new());
        out.push(self[..self.len() / 2].to_vec());
        out.push(self[..self.len() - 1].to_vec());
        out.push(self[1..].to_vec());
        out
    }
}

impl Shrink for String {
    fn shrink(&self) -> Vec<Self> {
        let chars: Vec<char> = self.chars().collect();
        chars
            .shrink()
            .into_iter()
            .map(|cs| cs.into_iter().collect())
            .collect()
    }
}

impl<A: Shrink + Clone, B: Shrink + Clone> Shrink for (A, B) {
    fn shrink(&self) -> Vec<Self> {
        let mut out: Vec<Self> = self
            .0
            .shrink()
            .into_iter()
            .map(|a| (a, self.1.clone()))
            .collect();
        out.extend(self.1.shrink().into_iter().map(|b| (self.0.clone(), b)));
        out
    }
}

/// Derives a stable 64-bit run seed from the property name, so each property
/// explores its own input stream and failures replay exactly.
fn seed_from_name(name: &str) -> u64 {
    // FNV-1a; stability matters more than quality here (Gen scrambles it).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs `prop` against `cases` generated inputs.
///
/// The property draws whatever values it needs from the supplied [`Gen`].
/// On failure the panic message includes the property name, case index, and
/// failure reason. For shrinkable inputs, use [`for_all_shrink`].
///
/// # Panics
///
/// Panics if any case fails — this is the test failure.
pub fn for_all(name: &str, cases: u32, mut prop: impl FnMut(&mut Gen) -> PropResult) {
    let base = seed_from_name(name);
    for case in 0..cases {
        let mut g = Gen::new(
            base.wrapping_add(case as u64)
                .wrapping_mul(0x9e3779b97f4a7c15),
        );
        if let Err(msg) = prop(&mut g) {
            // lint: allow(no-panic-macro) a failed property must abort the test
            panic!("property '{name}' failed on case {case}/{cases}: {msg}");
        }
    }
}

/// Runs `prop` against `cases` inputs produced by `gen`, shrinking failures.
///
/// Unlike [`for_all`], generation and checking are split so a failing value
/// can be shrunk: candidates from [`Shrink::shrink`] that still fail replace
/// the original, greedily, up to an iteration cap.
///
/// # Panics
///
/// Panics if any case fails, reporting the shrunk value and reason.
pub fn for_all_shrink<T: Shrink + Clone + std::fmt::Debug>(
    name: &str,
    cases: u32,
    mut gen: impl FnMut(&mut Gen) -> T,
    mut prop: impl FnMut(&T) -> PropResult,
) {
    let base = seed_from_name(name);
    for case in 0..cases {
        let mut g = Gen::new(
            base.wrapping_add(case as u64)
                .wrapping_mul(0x9e3779b97f4a7c15),
        );
        let value = gen(&mut g);
        if let Err(first_msg) = prop(&value) {
            // Greedy shrink: take the first still-failing candidate, repeat.
            let mut current = value;
            let mut msg = first_msg;
            let mut steps = 0;
            'outer: while steps < 512 {
                for candidate in current.shrink() {
                    steps += 1;
                    if let Err(m) = prop(&candidate) {
                        current = candidate;
                        msg = m;
                        continue 'outer;
                    }
                }
                break;
            }
            // lint: allow(no-panic-macro) a failed property must abort the test
            panic!(
                "property '{name}' failed on case {case}/{cases}\n\
                 shrunk input: {current:?}\nreason: {msg}"
            );
        }
    }
}

/// Fails the property with a message unless the condition holds.
///
/// The second argument is a format string evaluated lazily.
#[macro_export]
macro_rules! require {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("requirement failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// Fails the property unless the two expressions are equal, showing both.
#[macro_export]
macro_rules! require_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "requirement failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
}

/// Fails the property unless the two expressions differ.
#[macro_export]
macro_rules! require_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return Err(format!(
                "requirement failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen_is_deterministic_per_seed() {
        let mut a = Gen::new(7);
        let mut b = Gen::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut g = Gen::new(1);
        for _ in 0..10_000 {
            let v = g.usize_in(3, 9);
            assert!((3..=9).contains(&v));
            let f = g.f64_in(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn range_endpoints_reachable() {
        let mut g = Gen::new(2);
        let samples: Vec<usize> = (0..1000).map(|_| g.usize_in(0, 3)).collect();
        for target in 0..=3 {
            assert!(samples.contains(&target), "endpoint {target} never drawn");
        }
    }

    #[test]
    fn passing_property_passes() {
        for_all("tautology", 256, |g| {
            let v = g.next_u64();
            require!(v == v);
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "property 'contradiction' failed")]
    fn failing_property_panics_with_name() {
        for_all("contradiction", 16, |g| {
            let v = g.next_u64();
            require!(v != v, "impossible");
            Ok(())
        });
    }

    #[test]
    fn shrinking_minimizes_vec() {
        // Property: vectors shorter than 3 pass. A random failing vector
        // should shrink down to exactly length 3.
        let result = std::panic::catch_unwind(|| {
            for_all_shrink(
                "short vectors only",
                64,
                |g| {
                    let len = g.usize_in(0, 64).max(10);
                    g.bytes(len)
                },
                |v| {
                    if v.len() < 3 {
                        Ok(())
                    } else {
                        Err(format!("len {} >= 3", v.len()))
                    }
                },
            );
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("len 3 >= 3"), "not fully shrunk: {msg}");
    }

    #[test]
    fn ident_is_nonempty_lowercase() {
        let mut g = Gen::new(5);
        for _ in 0..500 {
            let s = g.ident(12);
            assert!(!s.is_empty() && s.len() <= 12);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn distinct_properties_get_distinct_streams() {
        assert_ne!(seed_from_name("a"), seed_from_name("b"));
    }
}
