//! Human-password synthesis and entropy estimation.
//!
//! The study's security argument is comparative: participants' existing
//! habits (short, personal-information-based, reused passwords — Fig. 4)
//! versus Amnesia's 94-charset 32-character generated passwords. This
//! module gives both sides numbers:
//!
//! * [`synthesize_password`] fabricates a plausible password for a
//!   participant from their Fig. 4 attributes (length bucket + technique);
//! * [`estimate_entropy`] scores any password string with a small
//!   zxcvbn-style estimator (dictionary words, years, sequences, repeats,
//!   character classes);
//! * [`amnesia_entropy_bits`] is the generative scheme's `log2(Nc^len)`.

use crate::population::{CreationTechnique, Participant};
use amnesia_core::analysis;
use amnesia_core::PasswordPolicy;
use amnesia_crypto::SecretRng;

/// Common words/names for both synthesis and dictionary detection — the
/// kind of material personal-info passwords are built from.
const DICTIONARY: &[&str] = &[
    "password", "letmein", "welcome", "dragon", "monkey", "sunshine", "princess", "football",
    "baseball", "master", "shadow", "michael", "jennifer", "jordan", "ashley", "daniel", "charlie",
    "summer", "winter", "london", "chicago", "austin", "tiger", "harley", "ranger", "buster",
    "hannah", "thomas", "robert", "george", "sarah", "smith", "johnson", "love", "angel", "happy",
    "flower", "secret", "money", "star",
];

/// Mnemonic-phrase material (initialisms of common phrases).
const MNEMONIC_STEMS: &[&str] = &[
    "iltwab",
    "mdwbia",
    "tqbfjotld",
    "wtbdotw",
    "ihtkymc",
    "obiwan",
    "ttfn2u",
    "gmta4me",
];

/// Synthesizes a plausible password for a participant.
///
/// Personal-info users combine a dictionary word with a memorable year or
/// short digit suffix; mnemonic users use phrase initialisms with
/// substitutions; "other" users produce random-ish alphanumerics. Length
/// follows the participant's Fig. 4(b) bucket.
pub fn synthesize_password(participant: &Participant, rng: &mut SecretRng) -> String {
    let target = participant.length.representative_len();
    let pick = |rng: &mut SecretRng, list: &[&str]| -> String {
        list[(rng.next_u64() % list.len() as u64) as usize].to_string()
    };
    let mut pw = match participant.technique {
        CreationTechnique::PersonalInfo => {
            let word = pick(rng, DICTIONARY);
            let year = 1950 + (rng.next_u64() % 66) as u32;
            // lint: allow(secret-format) synthesized study password, not key material
            format!("{word}{year}")
        }
        CreationTechnique::Mnemonic => {
            let stem = pick(rng, MNEMONIC_STEMS);
            let digit = (rng.next_u64() % 10).to_string();
            let mut s = stem;
            // A classic substitution to feel "clever".
            s = s.replace('i', "1").replace('o', "0");
            // lint: allow(secret-format) synthesized study password, not key material
            format!("{s}{digit}")
        }
        CreationTechnique::Other => {
            let mut s = String::new();
            const ALPHANUM: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789";
            for _ in 0..target {
                s.push(ALPHANUM[(rng.next_u64() % ALPHANUM.len() as u64) as usize] as char);
            }
            s
        }
    };
    // Fit the bucket length: truncate or pad with digits.
    while pw.len() < target {
        pw.push((b'0' + (rng.next_u64() % 10) as u8) as char);
    }
    pw.truncate(target.max(4));
    pw
}

/// Estimated entropy (bits) of a human-chosen password.
///
/// A deliberately simple zxcvbn-style model: the password is scanned for
/// dictionary words, four-digit years, repeats, and ascending sequences;
/// matched segments contribute `log2(pattern space)` instead of brute-force
/// character entropy; the remainder contributes `len × log2(charset)` for
/// its observed character classes.
pub fn estimate_entropy(password: &str) -> f64 {
    let lower = password.to_lowercase();
    let mut consumed = vec![false; lower.len()];
    let mut bits = 0.0;

    // Dictionary matches (longest-first so substrings don't double count).
    let mut words: Vec<&str> = DICTIONARY.to_vec();
    words.sort_by_key(|w| std::cmp::Reverse(w.len()));
    for word in words {
        let mut start = 0;
        while let Some(pos) = lower[start..].find(word) {
            let begin = start + pos;
            let end = begin + word.len();
            if consumed[begin..end].iter().all(|&c| !c) {
                consumed[begin..end].iter_mut().for_each(|c| *c = true);
                // Rank-based cost for a top-N dictionary word.
                bits += (DICTIONARY.len() as f64).log2() + 1.0;
            }
            start = end.min(lower.len().saturating_sub(1)).max(start + 1);
            if start >= lower.len() {
                break;
            }
        }
    }

    // Four-digit years 1900–2029: ~7 bits.
    let bytes = lower.as_bytes();
    let mut i = 0;
    while i + 4 <= bytes.len() {
        let window = &lower[i..i + 4];
        if consumed[i..i + 4].iter().all(|&c| !c) && window.chars().all(|c| c.is_ascii_digit()) {
            let value: u32 = window.parse().unwrap_or(0);
            if (1900..=2029).contains(&value) {
                consumed[i..i + 4].iter_mut().for_each(|c| *c = true);
                bits += 7.0;
                i += 4;
                continue;
            }
        }
        i += 1;
    }

    // Remaining characters: brute-force entropy over the observed classes.
    let remaining: String = lower
        .char_indices()
        .filter(|(idx, _)| !consumed[*idx])
        .map(|(_, c)| c)
        .collect();
    if !remaining.is_empty() {
        let mut charset = 0usize;
        if password.chars().any(|c| c.is_ascii_lowercase()) {
            charset += 26;
        }
        if password.chars().any(|c| c.is_ascii_uppercase()) {
            charset += 26;
        }
        if password.chars().any(|c| c.is_ascii_digit()) {
            charset += 10;
        }
        if password
            .chars()
            .any(|c| c.is_ascii_graphic() && !c.is_ascii_alphanumeric())
        {
            charset += 32;
        }
        let per_char = (charset.max(10) as f64).log2();

        // Repeat/sequence discount on the remainder.
        let chars: Vec<char> = remaining.chars().collect();
        let mut effective = 0.0;
        for (j, &c) in chars.iter().enumerate() {
            if j > 0 && (c == chars[j - 1] || (c as u32) == chars[j - 1] as u32 + 1) {
                effective += 1.5; // repeats/sequences are cheap
            } else {
                effective += per_char;
            }
        }
        bits += effective;
    }
    bits
}

/// Amnesia's generated-password entropy for a policy: `len × log2(Nc)`
/// (≈ 209.7 bits at the defaults, §IV-E).
pub fn amnesia_entropy_bits(policy: &PasswordPolicy) -> f64 {
    analysis::password_space(policy).bits()
}

/// Cohort-level entropy comparison across the whole population.
#[derive(Clone, Debug, PartialEq)]
pub struct CohortEntropyReport {
    /// Per-participant estimated entropy of their habit-synthesized
    /// password, in participant order.
    pub human_bits: Vec<f64>,
    /// Entropy of an Amnesia-generated password under the given policy.
    pub amnesia_bits: f64,
}

impl CohortEntropyReport {
    /// Mean of the human-password estimates.
    pub fn mean_human_bits(&self) -> f64 {
        self.human_bits.iter().sum::<f64>() / self.human_bits.len().max(1) as f64
    }

    /// Smallest human estimate.
    pub fn min_human_bits(&self) -> f64 {
        self.human_bits
            .iter()
            .copied()
            .fold(f64::INFINITY, f64::min)
    }

    /// Largest human estimate.
    pub fn max_human_bits(&self) -> f64 {
        self.human_bits.iter().copied().fold(0.0, f64::max)
    }

    /// Ratio of Amnesia bits to the mean human bits.
    pub fn improvement_factor(&self) -> f64 {
        self.amnesia_bits / self.mean_human_bits()
    }

    /// Text rendering used by the `sec7_usability` binary.
    pub fn render(&self) -> String {
        format!(
            "Entropy comparison (habit-synthesized vs Amnesia-generated):\n  participants' current passwords: mean {:.1} bits (min {:.1}, max {:.1})\n  Amnesia generated:               {:.1} bits\n  improvement factor:              {:.1}x more bits on average\n",
            self.mean_human_bits(),
            self.min_human_bits(),
            self.max_human_bits(),
            self.amnesia_bits,
            self.improvement_factor()
        )
    }
}

/// Builds the cohort report for a population under `policy`.
pub fn cohort_report(
    population: &crate::population::Population,
    policy: &PasswordPolicy,
    seed: u64,
) -> CohortEntropyReport {
    let mut rng = SecretRng::seeded(seed);
    let human_bits = population
        .iter()
        .map(|p| estimate_entropy(&synthesize_password(p, &mut rng)))
        .collect();
    CohortEntropyReport {
        human_bits,
        amnesia_bits: amnesia_entropy_bits(policy),
    }
}

/// Entropy comparison for one participant: `(human bits, amnesia bits)`.
pub fn participant_comparison(
    participant: &Participant,
    policy: &PasswordPolicy,
    rng: &mut SecretRng,
) -> (f64, f64) {
    let human = estimate_entropy(&synthesize_password(participant, rng));
    (human, amnesia_entropy_bits(policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::Population;

    #[test]
    fn dictionary_words_score_low() {
        let dictionary_based = estimate_entropy("password1987");
        let random_same_len = estimate_entropy("xq7vbn2kpl9w");
        assert!(
            dictionary_based < random_same_len / 2.0,
            "{dictionary_based} vs {random_same_len}"
        );
    }

    #[test]
    fn year_detection() {
        let with_year = estimate_entropy("monkey1999");
        let with_random_digits = estimate_entropy("monkey3852");
        assert!(with_year < with_random_digits);
    }

    #[test]
    fn repeats_and_sequences_are_cheap() {
        assert!(estimate_entropy("aaaaaaaa") < estimate_entropy("akzpqmwu"));
        assert!(estimate_entropy("abcdefgh") < estimate_entropy("akzpqmwu"));
    }

    #[test]
    fn classes_increase_entropy() {
        assert!(estimate_entropy("xqvbnkpw") < estimate_entropy("xQv8nK!w"));
    }

    #[test]
    fn amnesia_default_entropy_matches_paper() {
        let bits = amnesia_entropy_bits(&PasswordPolicy::default());
        assert!((bits - 209.75).abs() < 0.1, "{bits}");
    }

    #[test]
    fn every_participant_loses_to_amnesia() {
        // The study's core claim quantified: for all 31 habit profiles the
        // generated password has vastly more entropy.
        let pop = Population::generate(3);
        let mut rng = SecretRng::seeded(4);
        let policy = PasswordPolicy::default();
        for p in &pop {
            let (human, amnesia) = participant_comparison(p, &policy, &mut rng);
            assert!(human > 0.0);
            assert!(
                amnesia > human * 2.0,
                "participant {}: human {human:.1} vs amnesia {amnesia:.1}",
                p.id
            );
        }
    }

    #[test]
    fn cohort_report_shape() {
        let pop = Population::generate(9);
        let report = cohort_report(&pop, &PasswordPolicy::default(), 10);
        assert_eq!(report.human_bits.len(), 31);
        assert!(report.mean_human_bits() > 10.0);
        assert!(report.mean_human_bits() < 80.0);
        assert!(report.improvement_factor() > 2.0);
        assert!(report.min_human_bits() <= report.max_human_bits());
        let text = report.render();
        assert!(text.contains("improvement factor"));
    }

    #[test]
    fn synthesis_respects_length_bucket() {
        let pop = Population::generate(5);
        let mut rng = SecretRng::seeded(6);
        for p in &pop {
            let pw = synthesize_password(p, &mut rng);
            let target = p.length.representative_len();
            assert!(
                pw.len() <= target && pw.len() >= target.min(4),
                "len {} target {target}",
                pw.len()
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let pop = Population::generate(7);
        let p = pop.iter().next().unwrap();
        let a = synthesize_password(p, &mut SecretRng::seeded(1));
        let b = synthesize_password(p, &mut SecretRng::seeded(1));
        assert_eq!(a, b);
    }
}
