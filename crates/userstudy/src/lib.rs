//! Synthetic reproduction of the paper's user study (§VII).
//!
//! The original study recruited 31 Amazon Mechanical Turk workers who drove
//! the real prototype through six tasks and answered a survey. Human
//! subjects cannot ship in a library, so this crate substitutes a
//! **pinned synthetic population**: 31 [`Participant`]s whose attributes
//! exactly reproduce every marginal the paper reports (gender split, age
//! statistics, hours online, account counts, the four Figure 4 habit
//! histograms, and the §VII-C/D/E survey outcomes). The six tasks are then
//! executed for real — each participant gets a browser and phone in a live
//! [`AmnesiaSystem`](amnesia_system::AmnesiaSystem) and walks the full
//! protocol, so the system-side behaviour (pairing, generation, dummy-site
//! signup) is genuinely exercised rather than assumed.
//!
//! [`run_study`] produces a [`StudyReport`] whose render methods regenerate
//! Figure 4(a–d) and the §VII statistics; [`entropy`] adds the
//! security-comparison arithmetic behind "27 of 31 believe Amnesia
//! increases password security".
//!
//! # Example
//!
//! ```
//! let report = amnesia_userstudy::run_study(7).unwrap();
//! assert_eq!(report.population.len(), 31);
//! assert_eq!(report.completed_tasks, 31 * 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entropy;
pub mod population;
pub mod survey;
pub mod tasks;

pub use population::{
    AccountCountBucket, ChangeFrequency, CreationTechnique, Gender, HoursOnline, LengthBucket,
    Participant, Population, ReuseFrequency,
};
pub use survey::SurveyTabulation;
pub use tasks::{run_study, StudyReport, TaskOutcome};
