//! The pinned 31-participant synthetic population.
//!
//! Every categorical marginal below is taken from §VII of the paper; the
//! joint assignment (which participant carries which combination) is a
//! seeded shuffle, since the paper only reports marginals. Figure 4's bar
//! heights were reconstructed from a low-quality scan; the reconstruction
//! sums to 31 per subplot and is flagged in EXPERIMENTS.md.

use amnesia_crypto::SecretRng;

/// Number of study participants.
pub const PARTICIPANTS: usize = 31;

/// Participant gender (paper: 21 male, 10 female).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Gender {
    Male,
    Female,
}
amnesia_store::record_enum! { Gender { 0 => Male, 1 => Female } }

/// Daily time online (paper: 4 / 13 / 8 / 6 split).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum HoursOnline {
    H1To4,
    H4To8,
    H8To12,
    H12Plus,
}
amnesia_store::record_enum! { HoursOnline { 0 => H1To4, 1 => H4To8, 2 => H8To12, 3 => H12Plus } }

/// Unique online accounts (paper: 17 with ≤10, 14 with 11–20).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum AccountCountBucket {
    UpTo10,
    From11To20,
}
amnesia_store::record_enum! { AccountCountBucket { 0 => UpTo10, 1 => From11To20 } }

/// Figure 4(a): password reuse frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ReuseFrequency {
    Never,
    Rarely,
    Sometimes,
    Mostly,
    Always,
}
amnesia_store::record_enum! { ReuseFrequency { 0 => Never, 1 => Rarely, 2 => Sometimes, 3 => Mostly, 4 => Always } }

/// Figure 4(b): typical password length.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum LengthBucket {
    L6To8,
    L9To11,
    L12To14,
    L14Plus,
}
amnesia_store::record_enum! { LengthBucket { 0 => L6To8, 1 => L9To11, 2 => L12To14, 3 => L14Plus } }

impl LengthBucket {
    /// A representative length for synthesis and entropy estimation.
    pub fn representative_len(&self) -> usize {
        match self {
            LengthBucket::L6To8 => 7,
            LengthBucket::L9To11 => 10,
            LengthBucket::L12To14 => 13,
            LengthBucket::L14Plus => 16,
        }
    }
}

/// Figure 4(c): password creation technique.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum CreationTechnique {
    PersonalInfo,
    Mnemonic,
    Other,
}
amnesia_store::record_enum! { CreationTechnique { 0 => PersonalInfo, 1 => Mnemonic, 2 => Other } }

/// Figure 4(d): password change frequency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ChangeFrequency {
    Never,
    Rarely,
    Yearly,
    Monthly,
    Frequently,
}
amnesia_store::record_enum! { ChangeFrequency { 0 => Never, 1 => Rarely, 2 => Yearly, 3 => Monthly, 4 => Frequently } }

/// One synthetic study participant.
#[derive(Clone, Debug, PartialEq)]
pub struct Participant {
    /// Stable participant index (0-based).
    pub id: usize,
    /// Gender.
    pub gender: Gender,
    /// Age in years (20–61; x̄ ≈ 33.3, σ ≈ 9.9).
    pub age: u32,
    /// Daily hours online.
    pub hours_online: HoursOnline,
    /// Number of unique online accounts.
    pub accounts: AccountCountBucket,
    /// Password reuse habit (Fig. 4a).
    pub reuse: ReuseFrequency,
    /// Typical password length (Fig. 4b).
    pub length: LengthBucket,
    /// Password creation technique (Fig. 4c).
    pub technique: CreationTechnique,
    /// Password change frequency (Fig. 4d).
    pub change: ChangeFrequency,
    /// Whether the participant already uses a password manager (7 of 31).
    pub uses_password_manager: bool,
    /// §VII-C: believes Amnesia increases password security (27 of 31).
    pub believes_more_secure: bool,
    /// §VII-D: found registration convenient (24 of 31, 77.4%).
    pub registration_convenient: bool,
    /// §VII-D: found adding an account easy (26 of 31, 83.8%).
    pub add_account_easy: bool,
    /// §VII-D: found generating a password easy (26 of 31, 83.8%).
    pub generation_easy: bool,
    /// §VII-E: prefers Amnesia over their current method (22 of 31, 70.9%).
    pub prefers_amnesia: bool,
}
amnesia_store::record_struct! {
    Participant {
        id, gender, age, hours_online, accounts, reuse, length, technique, change,
        uses_password_manager, believes_more_secure, registration_convenient,
        add_account_easy, generation_easy, prefers_amnesia,
    }
}

/// The full 31-participant population.
#[derive(Clone, Debug, PartialEq)]
pub struct Population {
    participants: Vec<Participant>,
}
amnesia_store::record_struct! { Population { participants } }

/// Expands a `(value, count)` histogram into a flat attribute list.
fn expand<T: Copy>(spec: &[(T, usize)]) -> Vec<T> {
    let mut out = Vec::with_capacity(PARTICIPANTS);
    for &(value, count) in spec {
        out.extend(std::iter::repeat_n(value, count));
    }
    assert_eq!(out.len(), PARTICIPANTS, "marginal must sum to 31");
    out
}

/// Fisher–Yates shuffle driven by the study seed.
fn shuffle<T>(items: &mut [T], rng: &mut SecretRng) {
    for i in (1..items.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

impl Population {
    /// Generates the pinned population. Marginals are exact for every
    /// categorical attribute; ages are drawn once from a truncated normal
    /// targeting the paper's x̄ = 33.32, σ = 9.92, range 20–61.
    pub fn generate(seed: u64) -> Self {
        use AccountCountBucket::*;
        use ChangeFrequency as CF;
        use CreationTechnique::*;
        use HoursOnline::*;
        use LengthBucket::*;
        use ReuseFrequency as RF;

        let mut rng = SecretRng::seeded(seed);

        let mut genders = expand(&[(Gender::Male, 21), (Gender::Female, 10)]);
        let mut hours = expand(&[(H1To4, 4), (H4To8, 13), (H8To12, 8), (H12Plus, 6)]);
        let mut accounts = expand(&[(UpTo10, 17), (From11To20, 14)]);
        // Figure 4 reconstructions (sum to 31 each; see EXPERIMENTS.md).
        let mut reuse = expand(&[
            (RF::Never, 2),
            (RF::Rarely, 5),
            (RF::Sometimes, 8),
            (RF::Mostly, 7),
            (RF::Always, 9),
        ]);
        let mut lengths = expand(&[(L6To8, 14), (L9To11, 12), (L12To14, 4), (L14Plus, 1)]);
        let mut techniques = expand(&[(PersonalInfo, 16), (Mnemonic, 10), (Other, 5)]);
        let mut changes = expand(&[
            (CF::Never, 6),
            (CF::Rarely, 10),
            (CF::Yearly, 10),
            (CF::Monthly, 4),
            (CF::Frequently, 1),
        ]);

        // §VII-E: 7 use a password manager; 6 of them prefer Amnesia, and 16
        // of the 24 non-users do, totalling the paper's headline 22 (70.9%).
        // (The paper's prose says "14" for the non-user subgroup, which is
        // inconsistent with its own 22/31 headline; see EXPERIMENTS.md.)
        let mut pm_and_pref: Vec<(bool, bool)> = Vec::new();
        pm_and_pref.extend(std::iter::repeat_n((true, true), 6));
        pm_and_pref.push((true, false));
        pm_and_pref.extend(std::iter::repeat_n((false, true), 16));
        pm_and_pref.extend(std::iter::repeat_n((false, false), 8));
        assert_eq!(pm_and_pref.len(), PARTICIPANTS);

        let mut believes = expand(&[(true, 27), (false, 4)]);
        let mut reg_conv = expand(&[(true, 24), (false, 7)]);
        let mut add_easy = expand(&[(true, 26), (false, 5)]);
        let mut gen_easy = expand(&[(true, 26), (false, 5)]);

        {
            let list = &mut genders;
            shuffle(list, &mut rng);
        }
        shuffle(&mut hours, &mut rng);
        shuffle(&mut accounts, &mut rng);
        shuffle(&mut reuse, &mut rng);
        shuffle(&mut lengths, &mut rng);
        shuffle(&mut techniques, &mut rng);
        shuffle(&mut changes, &mut rng);
        shuffle(&mut pm_and_pref, &mut rng);
        shuffle(&mut believes, &mut rng);
        shuffle(&mut reg_conv, &mut rng);
        shuffle(&mut add_easy, &mut rng);
        shuffle(&mut gen_easy, &mut rng);

        let ages = Self::sample_ages(&mut rng);

        let participants = (0..PARTICIPANTS)
            .map(|i| Participant {
                id: i,
                gender: genders[i],
                age: ages[i],
                hours_online: hours[i],
                accounts: accounts[i],
                reuse: reuse[i],
                length: lengths[i],
                technique: techniques[i],
                change: changes[i],
                uses_password_manager: pm_and_pref[i].0,
                believes_more_secure: believes[i],
                registration_convenient: reg_conv[i],
                add_account_easy: add_easy[i],
                generation_easy: gen_easy[i],
                prefers_amnesia: pm_and_pref[i].1,
            })
            .collect();
        Population { participants }
    }

    /// Truncated-normal ages targeting x̄ = 33.32, σ = 9.92, within the
    /// paper's observed range 20–61 with the endpoints pinned so the range
    /// itself reproduces. Many candidate vectors are drawn and the one
    /// closest to the paper's statistics kept, so every seed lands near the
    /// reported mean and σ.
    fn sample_ages(rng: &mut SecretRng) -> Vec<u32> {
        let draw = |rng: &mut SecretRng| -> Vec<u32> {
            let mut ages = Vec::with_capacity(PARTICIPANTS);
            ages.push(20);
            ages.push(61);
            while ages.len() < PARTICIPANTS {
                // Box–Muller.
                let u1 =
                    ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64).max(f64::MIN_POSITIVE);
                let u2 = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let age = (33.32 + 9.92 * z).round();
                if (20.0..=61.0).contains(&age) {
                    ages.push(age as u32);
                }
            }
            ages
        };
        let stats = |ages: &[u32]| -> (f64, f64) {
            let n = ages.len() as f64;
            let mean = ages.iter().map(|&a| a as f64).sum::<f64>() / n;
            let var = ages.iter().map(|&a| (a as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
            (mean, var.sqrt())
        };
        let mut best = draw(rng);
        let mut best_err = {
            let (m, sd) = stats(&best);
            (m - 33.32).abs() + (sd - 9.92).abs()
        };
        for _ in 0..128 {
            let candidate = draw(rng);
            let (m, sd) = stats(&candidate);
            let err = (m - 33.32).abs() + (sd - 9.92).abs();
            if err < best_err {
                best = candidate;
                best_err = err;
            }
        }
        best
    }

    /// Number of participants (always 31).
    pub fn len(&self) -> usize {
        self.participants.len()
    }

    /// Whether the population is empty (never; for API completeness).
    pub fn is_empty(&self) -> bool {
        self.participants.is_empty()
    }

    /// Iterates over participants in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, Participant> {
        self.participants.iter()
    }

    /// Counts participants matching a predicate.
    pub fn count_where(&self, pred: impl Fn(&Participant) -> bool) -> usize {
        self.participants.iter().filter(|p| pred(p)).count()
    }

    /// Mean and sample standard deviation of ages.
    pub fn age_stats(&self) -> (f64, f64) {
        let n = self.participants.len() as f64;
        let mean = self.participants.iter().map(|p| p.age as f64).sum::<f64>() / n;
        let var = self
            .participants
            .iter()
            .map(|p| (p.age as f64 - mean).powi(2))
            .sum::<f64>()
            / (n - 1.0);
        (mean, var.sqrt())
    }
}

impl<'a> IntoIterator for &'a Population {
    type Item = &'a Participant;
    type IntoIter = std::slice::Iter<'a, Participant>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop() -> Population {
        Population::generate(1)
    }

    #[test]
    fn thirty_one_participants() {
        assert_eq!(pop().len(), PARTICIPANTS);
    }

    #[test]
    fn gender_split_matches_paper() {
        let p = pop();
        assert_eq!(p.count_where(|x| x.gender == Gender::Male), 21);
        assert_eq!(p.count_where(|x| x.gender == Gender::Female), 10);
    }

    #[test]
    fn hours_online_match_paper() {
        let p = pop();
        assert_eq!(p.count_where(|x| x.hours_online == HoursOnline::H1To4), 4);
        assert_eq!(p.count_where(|x| x.hours_online == HoursOnline::H4To8), 13);
        assert_eq!(p.count_where(|x| x.hours_online == HoursOnline::H8To12), 8);
        assert_eq!(p.count_where(|x| x.hours_online == HoursOnline::H12Plus), 6);
    }

    #[test]
    fn account_buckets_match_paper() {
        let p = pop();
        assert_eq!(
            p.count_where(|x| x.accounts == AccountCountBucket::UpTo10),
            17
        );
        assert_eq!(
            p.count_where(|x| x.accounts == AccountCountBucket::From11To20),
            14
        );
    }

    #[test]
    fn figure4_marginals_sum_and_match() {
        let p = pop();
        // 4(a)
        assert_eq!(p.count_where(|x| x.reuse == ReuseFrequency::Never), 2);
        assert_eq!(p.count_where(|x| x.reuse == ReuseFrequency::Always), 9);
        // 4(b): short passwords dominate.
        assert_eq!(p.count_where(|x| x.length == LengthBucket::L6To8), 14);
        assert_eq!(p.count_where(|x| x.length == LengthBucket::L14Plus), 1);
        // 4(c): personal information dominates.
        assert_eq!(
            p.count_where(|x| x.technique == CreationTechnique::PersonalInfo),
            16
        );
        // 4(d)
        assert_eq!(
            p.count_where(|x| x.change == ChangeFrequency::Frequently),
            1
        );
    }

    #[test]
    fn survey_outcomes_match_paper() {
        let p = pop();
        assert_eq!(p.count_where(|x| x.believes_more_secure), 27);
        assert_eq!(p.count_where(|x| x.registration_convenient), 24);
        assert_eq!(p.count_where(|x| x.add_account_easy), 26);
        assert_eq!(p.count_where(|x| x.generation_easy), 26);
        assert_eq!(p.count_where(|x| x.prefers_amnesia), 22);
        assert_eq!(p.count_where(|x| x.uses_password_manager), 7);
        // Subgroups: 6/7 of manager users prefer Amnesia.
        assert_eq!(
            p.count_where(|x| x.uses_password_manager && x.prefers_amnesia),
            6
        );
    }

    #[test]
    fn age_distribution_approximates_paper() {
        let p = pop();
        let (mean, sd) = p.age_stats();
        assert!((mean - 33.32).abs() < 1.0, "age mean {mean}");
        assert!((sd - 9.92).abs() < 1.0, "age sd {sd}");
        assert!(p.iter().all(|x| (20..=61).contains(&x.age)));
        // Endpoints pinned so the reported range reproduces.
        assert!(p.iter().any(|x| x.age == 20));
        assert!(p.iter().any(|x| x.age == 61));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(Population::generate(9), Population::generate(9));
        // Marginals equal but joint assignment differs across seeds.
        let a = Population::generate(1);
        let b = Population::generate(2);
        assert_ne!(a, b);
    }

    #[test]
    fn representative_lengths_are_in_bucket() {
        assert_eq!(LengthBucket::L6To8.representative_len(), 7);
        assert!(LengthBucket::L14Plus.representative_len() > 14);
    }
}
