//! Survey tabulation — regenerates Figure 4 and the §VII statistics.

use crate::population::{
    AccountCountBucket, ChangeFrequency, CreationTechnique, Gender, HoursOnline, LengthBucket,
    Population, ReuseFrequency,
};

/// A labelled histogram (one Figure 4 subplot).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Subplot title, e.g. `"Password Reuse"`.
    pub title: String,
    /// `(category label, participant count)` in category order.
    pub bars: Vec<(String, usize)>,
}

impl Histogram {
    /// Total participants across the bars.
    pub fn total(&self) -> usize {
        self.bars.iter().map(|(_, c)| c).sum()
    }

    /// Renders ASCII bars, one row per category.
    pub fn render(&self) -> String {
        let mut out = format!("{}\n", self.title);
        let width = self
            .bars
            .iter()
            .map(|(label, _)| label.len())
            .max()
            .unwrap_or(0);
        for (label, count) in &self.bars {
            out.push_str(&format!(
                "  {label:width$} | {:2} {}\n",
                count,
                "#".repeat(*count)
            ));
        }
        out
    }
}

/// The full tabulation of the study survey.
#[derive(Clone, Debug, PartialEq)]
pub struct SurveyTabulation {
    /// Figure 4(a): password reuse.
    pub reuse: Histogram,
    /// Figure 4(b): password length.
    pub length: Histogram,
    /// Figure 4(c): creation technique.
    pub technique: Histogram,
    /// Figure 4(d): change frequency.
    pub change: Histogram,
    /// Demographics: male count (of 31).
    pub male: usize,
    /// Demographics: female count.
    pub female: usize,
    /// Demographics: age mean and sample σ.
    pub age_mean: f64,
    /// Age standard deviation.
    pub age_std: f64,
    /// Hours-online histogram.
    pub hours: Histogram,
    /// Account-count histogram.
    pub accounts: Histogram,
    /// §VII-C: believe Amnesia increases security.
    pub believes_more_secure: usize,
    /// §VII-D: registration convenient.
    pub registration_convenient: usize,
    /// §VII-D: adding an account easy.
    pub add_account_easy: usize,
    /// §VII-D: generating a password easy.
    pub generation_easy: usize,
    /// §VII-E: prefer Amnesia overall.
    pub prefers_amnesia: usize,
    /// §VII-E: participants already using a password manager.
    pub uses_password_manager: usize,
    /// §VII-E: manager users who prefer Amnesia.
    pub pm_users_preferring: usize,
    /// §VII-E: non-manager users who prefer Amnesia.
    pub non_pm_users_preferring: usize,
}

impl SurveyTabulation {
    /// Tabulates a population.
    pub fn from_population(population: &Population) -> Self {
        use ReuseFrequency as RF;
        let reuse = Histogram {
            title: "Figure 4(a): Password Reuse".into(),
            bars: [
                ("Never", RF::Never),
                ("Rarely", RF::Rarely),
                ("Sometimes", RF::Sometimes),
                ("Mostly", RF::Mostly),
                ("Always", RF::Always),
            ]
            .into_iter()
            .map(|(label, v)| (label.to_string(), population.count_where(|p| p.reuse == v)))
            .collect(),
        };
        let length = Histogram {
            title: "Figure 4(b): Password Length".into(),
            bars: [
                ("6~8", LengthBucket::L6To8),
                ("9~11", LengthBucket::L9To11),
                ("12~14", LengthBucket::L12To14),
                ("14+", LengthBucket::L14Plus),
            ]
            .into_iter()
            .map(|(label, v)| (label.to_string(), population.count_where(|p| p.length == v)))
            .collect(),
        };
        let technique = Histogram {
            title: "Figure 4(c): Password Creation Techniques".into(),
            bars: [
                ("Personal Info", CreationTechnique::PersonalInfo),
                ("Mnemonic", CreationTechnique::Mnemonic),
                ("Other", CreationTechnique::Other),
            ]
            .into_iter()
            .map(|(label, v)| {
                (
                    label.to_string(),
                    population.count_where(|p| p.technique == v),
                )
            })
            .collect(),
        };
        use ChangeFrequency as CF;
        let change = Histogram {
            title: "Figure 4(d): Password Change Frequency".into(),
            bars: [
                ("Never", CF::Never),
                ("Rarely", CF::Rarely),
                ("Yearly", CF::Yearly),
                ("Monthly", CF::Monthly),
                ("Frequently", CF::Frequently),
            ]
            .into_iter()
            .map(|(label, v)| (label.to_string(), population.count_where(|p| p.change == v)))
            .collect(),
        };
        let hours = Histogram {
            title: "Hours online per day".into(),
            bars: [
                ("1-4h", HoursOnline::H1To4),
                ("4-8h", HoursOnline::H4To8),
                ("8-12h", HoursOnline::H8To12),
                ("12h+", HoursOnline::H12Plus),
            ]
            .into_iter()
            .map(|(label, v)| {
                (
                    label.to_string(),
                    population.count_where(|p| p.hours_online == v),
                )
            })
            .collect(),
        };
        let accounts = Histogram {
            title: "Unique online accounts".into(),
            bars: [
                ("<=10", AccountCountBucket::UpTo10),
                ("11-20", AccountCountBucket::From11To20),
            ]
            .into_iter()
            .map(|(label, v)| {
                (
                    label.to_string(),
                    population.count_where(|p| p.accounts == v),
                )
            })
            .collect(),
        };
        let (age_mean, age_std) = population.age_stats();
        SurveyTabulation {
            reuse,
            length,
            technique,
            change,
            male: population.count_where(|p| p.gender == Gender::Male),
            female: population.count_where(|p| p.gender == Gender::Female),
            age_mean,
            age_std,
            hours,
            accounts,
            believes_more_secure: population.count_where(|p| p.believes_more_secure),
            registration_convenient: population.count_where(|p| p.registration_convenient),
            add_account_easy: population.count_where(|p| p.add_account_easy),
            generation_easy: population.count_where(|p| p.generation_easy),
            prefers_amnesia: population.count_where(|p| p.prefers_amnesia),
            uses_password_manager: population.count_where(|p| p.uses_password_manager),
            pm_users_preferring: population
                .count_where(|p| p.uses_password_manager && p.prefers_amnesia),
            non_pm_users_preferring: population
                .count_where(|p| !p.uses_password_manager && p.prefers_amnesia),
        }
    }

    /// Percentage helper over the 31 participants.
    fn pct(count: usize) -> f64 {
        count as f64 * 100.0 / crate::population::PARTICIPANTS as f64
    }

    /// Renders all four Figure 4 subplots.
    pub fn render_figure4(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}",
            self.reuse.render(),
            self.length.render(),
            self.technique.render(),
            self.change.render()
        )
    }

    /// Renders the §VII-B demographics block.
    pub fn render_demographics(&self) -> String {
        format!(
            "Participants: 31 ({} male, {} female)\n\
             Age: mean {:.2}, sd {:.2} (paper: 33.32, 9.92; range 20-61)\n\n{}\n{}",
            self.male,
            self.female,
            self.age_mean,
            self.age_std,
            self.hours.render(),
            self.accounts.render()
        )
    }

    /// Renders the §VII-C/D/E statistics with percentages.
    pub fn render_usability(&self) -> String {
        format!(
            "Believe Amnesia increases password security: {}/31 ({:.1}%)\n\
             Registration convenient:                     {}/31 ({:.1}%)\n\
             Adding an account easy:                      {}/31 ({:.1}%)\n\
             Generating a password easy:                  {}/31 ({:.1}%)\n\
             Prefer Amnesia over current method:          {}/31 ({:.1}%)\n\
             - of {} password-manager users:              {} prefer\n\
             - of {} non-manager users:                   {} prefer\n",
            self.believes_more_secure,
            Self::pct(self.believes_more_secure),
            self.registration_convenient,
            Self::pct(self.registration_convenient),
            self.add_account_easy,
            Self::pct(self.add_account_easy),
            self.generation_easy,
            Self::pct(self.generation_easy),
            self.prefers_amnesia,
            Self::pct(self.prefers_amnesia),
            self.uses_password_manager,
            self.pm_users_preferring,
            31 - self.uses_password_manager,
            self.non_pm_users_preferring,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tab() -> SurveyTabulation {
        SurveyTabulation::from_population(&Population::generate(1))
    }

    #[test]
    fn every_histogram_sums_to_31() {
        let t = tab();
        for h in [
            &t.reuse,
            &t.length,
            &t.technique,
            &t.change,
            &t.hours,
            &t.accounts,
        ] {
            assert_eq!(h.total(), 31, "{}", h.title);
        }
    }

    #[test]
    fn paper_percentages_reproduce() {
        let t = tab();
        // 24/31 = 77.4%, 26/31 = 83.8%, 22/31 = 70.9% — the §VII figures.
        assert_eq!(t.registration_convenient, 24);
        assert!((SurveyTabulation::pct(24) - 77.4).abs() < 0.1);
        assert_eq!(t.add_account_easy, 26);
        assert!((SurveyTabulation::pct(26) - 83.8).abs() < 0.1);
        assert_eq!(t.prefers_amnesia, 22);
        assert!((SurveyTabulation::pct(22) - 70.9).abs() < 0.1);
    }

    #[test]
    fn renders_contain_labels_and_counts() {
        let t = tab();
        let fig4 = t.render_figure4();
        for label in [
            "Password Reuse",
            "Sometimes",
            "6~8",
            "Personal Info",
            "Yearly",
        ] {
            assert!(fig4.contains(label), "missing {label}");
        }
        let usability = t.render_usability();
        assert!(usability.contains("77.4%"));
        assert!(usability.contains("83.9%")); // 26/31 = 83.87% (the paper rounds it to 83.8%)
        assert!(usability.contains("71.0%")); // 22/31 = 70.97% (the paper rounds it to 70.9%)
        let demo = t.render_demographics();
        assert!(demo.contains("21 male"));
    }

    #[test]
    fn histogram_render_bars_scale_with_count() {
        let h = Histogram {
            title: "t".into(),
            bars: vec![("a".into(), 3), ("b".into(), 0)],
        };
        let text = h.render();
        assert!(text.contains("###"));
        assert_eq!(h.total(), 3);
    }
}
