//! The six study tasks (§VII-A), executed against the real system.
//!
//! "The users are required to perform a number of tasks ...:
//!  1) Create an Amnesia account
//!  2) Download and register the Android application
//!  3) Create an account on Amnesia for the dummy website
//!  4) Generate a password for the dummy website
//!  5) Create an account on the dummy website using the generated password
//!  6) Post a comment on the dummy website containing the generated
//!     password."

use crate::population::{Participant, Population};
use crate::survey::SurveyTabulation;
use amnesia_client::{DummyWebsite, SitePolicy};
use amnesia_core::{Domain, PasswordPolicy, Username};
use amnesia_system::{AmnesiaSystem, SystemConfig, SystemError};

/// The dummy website's domain in the study deployment.
pub const DUMMY_DOMAIN: &str = "dummy.study.example";

/// Per-participant record of the six tasks.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskOutcome {
    /// Participant id.
    pub participant: usize,
    /// Task 1–2: Amnesia account created and application registered/paired.
    pub setup_ok: bool,
    /// Task 3: dummy-site account added to Amnesia.
    pub account_added: bool,
    /// Task 4: password generated.
    pub password_generated: bool,
    /// Task 5: dummy-website signup with the generated password succeeded.
    pub website_signup_ok: bool,
    /// Task 6: comment containing the password posted.
    pub comment_posted: bool,
    /// Measured generation latency (ms) for task 4.
    pub generation_latency_ms: f64,
}

impl TaskOutcome {
    /// Number of the six tasks completed (tasks 1–2 count as two).
    pub fn completed(&self) -> usize {
        [
            self.setup_ok,
            self.setup_ok,
            self.account_added,
            self.password_generated,
            self.website_signup_ok,
            self.comment_posted,
        ]
        .iter()
        .filter(|&&b| b)
        .count()
    }
}

/// The complete study output.
#[derive(Debug)]
pub struct StudyReport {
    /// The pinned synthetic population.
    pub population: Population,
    /// Per-participant task results, in id order.
    pub outcomes: Vec<TaskOutcome>,
    /// The survey tabulation (Figure 4 + §VII statistics).
    pub tabulation: SurveyTabulation,
    /// Total tasks completed across all participants (31 × 6 when all
    /// succeed).
    pub completed_tasks: usize,
    /// Comments posted on the dummy website (task 6 artifacts).
    pub website_comments: usize,
    /// Mean generation latency across participants (ms).
    pub mean_generation_latency_ms: f64,
}

fn participant_username(p: &Participant) -> String {
    format!("participant{:02}", p.id)
}

/// Runs the full study: builds one deployment, walks all 31 participants
/// through the six tasks, and tabulates the survey.
///
/// The deployment uses the idealized LAN profile — task *feasibility* is
/// what the study measures here; latency distributions are the Figure 3
/// experiment's job.
///
/// # Errors
///
/// Propagates any system failure (none are expected; a failure indicates a
/// harness bug rather than a participant drop-out).
pub fn run_study(seed: u64) -> Result<StudyReport, SystemError> {
    let population = Population::generate(seed);
    let mut system = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(seed)
            // A smaller per-phone table keeps the 31-phone study fast; the
            // scheme is size-independent and Figure 3 uses the full 5000.
            .with_table_size(512),
    );
    let mut website = DummyWebsite::new(DUMMY_DOMAIN, SitePolicy::permissive(), seed);

    let mut outcomes = Vec::with_capacity(population.len());
    for participant in &population {
        let user = participant_username(participant);
        let browser = format!("{user}-browser");
        let phone = format!("{user}-phone");
        system.add_browser(&browser);
        system.add_phone(&phone, seed ^ (participant.id as u64) << 8);

        // Tasks 1–2: Amnesia account + application registration/pairing.
        let master_password = format!("{user} master passphrase");
        system.setup_user(&user, &master_password, &browser, &phone)?;
        let setup_ok = true;

        // Task 3: add the dummy-site account.
        let username = Username::new(user.clone())?;
        let domain = Domain::new(DUMMY_DOMAIN)?;
        system.add_account(
            &browser,
            username.clone(),
            domain.clone(),
            PasswordPolicy::default(),
        )?;
        let account_added = true;

        // Task 4: generate the password.
        let generation = system.generate_password(&browser, &phone, &username, &domain)?;
        let password_generated = true;

        // Task 5: sign up on the dummy website with the generated password.
        let website_signup_ok = website.signup(&user, generation.password.as_str()).is_ok();

        // Task 6: post a comment containing the generated password.
        let comment_posted = website
            .post_comment(
                &user,
                generation.password.as_str(),
                &format!("my generated password is {}", generation.password),
            )
            .is_ok();

        outcomes.push(TaskOutcome {
            participant: participant.id,
            setup_ok,
            account_added,
            password_generated,
            website_signup_ok,
            comment_posted,
            generation_latency_ms: generation.latency.as_millis_f64(),
        });
    }

    let completed_tasks = outcomes.iter().map(TaskOutcome::completed).sum();
    let website_comments = website.comments().len();
    let mean_generation_latency_ms = outcomes
        .iter()
        .map(|o| o.generation_latency_ms)
        .sum::<f64>()
        / outcomes.len().max(1) as f64;
    let tabulation = SurveyTabulation::from_population(&population);

    Ok(StudyReport {
        population,
        outcomes,
        tabulation,
        completed_tasks,
        website_comments,
        mean_generation_latency_ms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_participants_complete_all_tasks() {
        let report = run_study(11).unwrap();
        assert_eq!(report.outcomes.len(), 31);
        assert_eq!(report.completed_tasks, 31 * 6);
        assert_eq!(report.website_comments, 31);
        for o in &report.outcomes {
            assert_eq!(o.completed(), 6, "participant {}", o.participant);
            assert!(o.generation_latency_ms > 0.0);
        }
    }

    #[test]
    fn tabulation_comes_from_the_same_population() {
        let report = run_study(12).unwrap();
        assert_eq!(report.tabulation.prefers_amnesia, 22);
        assert_eq!(report.population.len(), 31);
    }

    #[test]
    fn study_is_deterministic_per_seed() {
        let a = run_study(13).unwrap();
        let b = run_study(13).unwrap();
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.mean_generation_latency_ms, b.mean_generation_latency_ms);
    }
}
