//! Attack lab: executes the paper's §IV security analysis against live
//! deployments — both single-surface attacks (which must fail) and the
//! two-factor combinations (which define the security boundary).
//!
//! ```sh
//! cargo run --example attack_lab
//! ```

use amnesia::attacks::{guessing::GuessingReport, run_all};

fn main() {
    println!("Amnesia attack lab — every §IV vector, executed\n");
    let reports = run_all(0xDEAD);
    for report in &reports {
        print!("{}", report.render());
        println!();
    }

    let breaches = reports.iter().filter(|r| r.success).count();
    println!(
        "summary: {breaches}/{} vectors yield passwords — exactly the two-factor \
         combinations plus a broken browser-side HTTPS session",
        reports.len()
    );
    println!("\nwhy brute force fails (paper §IV-C/§IV-E):");
    println!("  {}", GuessingReport::token_guessing().summary());
    println!("  {}", GuessingReport::server_secret_guessing().summary());
}
