//! Multi-computer access (paper §I: "a user can have access to the password
//! manager on multiple computers without installing any software on those
//! computers"): the same user generates from a home laptop and an office
//! desktop; only the one paired phone authorizes both.
//!
//! ```sh
//! cargo run --example multi_device
//! ```

use amnesia::core::{Domain, PasswordPolicy, Username};
use amnesia::phone::ConfirmPolicy;
use amnesia::system::{AmnesiaSystem, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = AmnesiaSystem::new(SystemConfig::default().with_seed(8));
    system.add_browser("home-laptop");
    system.add_browser("office-desktop");
    system.add_phone("phone", 80);
    system.setup_user("dana", "master password", "home-laptop", "phone")?;

    let username = Username::new("dana")?;
    let domain = Domain::new("intranet.example.com")?;
    system.add_account(
        "home-laptop",
        username.clone(),
        domain.clone(),
        PasswordPolicy::default(),
    )?;

    // From home: the phone prompts and Dana confirms.
    let from_home = system.generate_password("home-laptop", "phone", &username, &domain)?;
    println!(
        "home laptop    : {} ({} confirmations so far)",
        from_home.password,
        system.phone("phone").unwrap().tokens_computed()
    );

    // At the office: log in with just the master password — no software to
    // install, no secrets on the desktop.
    system.login("office-desktop", "dana", "master password")?;
    let accounts = system.list_accounts("office-desktop")?;
    println!(
        "office desktop : sees {} managed account(s) after plain web login",
        accounts.len()
    );

    let from_office = system.generate_password("office-desktop", "phone", &username, &domain)?;
    println!("office desktop : {}", from_office.password);
    assert_eq!(from_home.password, from_office.password);
    println!("same password from both computers; every generation touched the phone");

    // A thief with the desktop alone gets nothing: the phone's owner
    // rejects the unsolicited request.
    system
        .phone_mut("phone")
        .unwrap()
        .set_confirm_policy(ConfirmPolicy::AutoReject);
    match system.generate_password("office-desktop", "phone", &username, &domain) {
        Err(_) => println!("with the user rejecting on the phone, the desktop session is useless"),
        Ok(_) => unreachable!("rejected confirmations cannot produce passwords"),
    }
    Ok(())
}
