//! Policy adaptation (§III-B4): websites impose wildly different password
//! rules; Amnesia adapts by narrowing the character table and length per
//! account. This example enrolls one user on three sites with conflicting
//! policies and shows every generated password passing its site's checks.
//!
//! ```sh
//! cargo run --example policy_adaptation
//! ```

use amnesia::client::{DummyWebsite, SitePolicy};
use amnesia::core::{CharClass, Domain, Username};
use amnesia::system::{AmnesiaSystem, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = AmnesiaSystem::new(SystemConfig::default().with_seed(3));
    system.add_browser("browser");
    system.add_phone("phone", 30);
    system.setup_user("carol", "master password", "browser", "phone")?;

    // Three sites, three conflicting password policies.
    let sites: Vec<(&str, SitePolicy)> = vec![
        (
            "bank.example.com",
            SitePolicy::new(8, 12)
                .forbid(CharClass::Special)
                .require(CharClass::Digit),
        ),
        (
            "legacy.example.com",
            SitePolicy::new(6, 8)
                .forbid(CharClass::Special)
                .forbid(CharClass::Upper),
        ),
        ("modern.example.com", SitePolicy::new(12, 128)),
    ];

    let username = Username::new("carol")?;
    for (domain_str, site_policy) in &sites {
        let domain = Domain::new(*domain_str)?;
        // The Amnesia-side template policy is derived from the site's rules.
        let amnesia_policy = site_policy.to_amnesia_policy()?;
        system.add_account(
            "browser",
            username.clone(),
            domain.clone(),
            amnesia_policy.clone(),
        )?;

        let outcome = system.generate_password("browser", "phone", &username, &domain)?;
        let password = outcome.password.as_str();

        let mut website = DummyWebsite::new(*domain_str, site_policy.clone(), 77);
        match website.signup("carol", password) {
            Ok(()) => println!(
                "{domain_str:<22} len={:2} charset={:2} -> {password}  [accepted]",
                amnesia_policy.length(),
                amnesia_policy.charset().len(),
            ),
            Err(e) => println!("{domain_str:<22} REJECTED: {e}"),
        }
        println!(
            "{:<22} password space: {} combinations",
            "",
            amnesia::core::analysis::password_space(&amnesia_policy).scientific()
        );
    }
    Ok(())
}
