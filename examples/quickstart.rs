//! Quickstart: stand up a full Amnesia deployment, pair a phone, manage an
//! account, and generate a website password end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use amnesia::core::{Domain, PasswordPolicy, Username};
use amnesia::system::{AmnesiaSystem, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deployment = Amnesia server + rendezvous (GCM stand-in) + cloud
    // provider, all over a simulated network. Add the user's devices.
    let mut system = AmnesiaSystem::new(SystemConfig::default().with_seed(42));
    system.add_browser("laptop-browser");
    system.add_phone("alice-phone", 7);

    // One call runs the whole onboarding: web signup, login, CAPTCHA phone
    // pairing, and the one-time Kp cloud backup.
    system.setup_user(
        "alice",
        "one strong master password",
        "laptop-browser",
        "alice-phone",
    )?;

    // Manage a website account: the server creates (u, d, sigma); no
    // password exists anywhere yet.
    let username = Username::new("alice")?;
    let domain = Domain::new("mail.google.com")?;
    system.add_account(
        "laptop-browser",
        username.clone(),
        domain.clone(),
        PasswordPolicy::default(),
    )?;

    // Generate: browser -> server -> GCM -> phone (user taps accept) ->
    // server -> browser.
    let outcome = system.generate_password("laptop-browser", "alice-phone", &username, &domain)?;
    println!("generated password : {}", outcome.password);
    println!("end-to-end latency : {}", outcome.latency);

    // Nothing was stored: the same request regenerates the same password.
    let again = system.generate_password("laptop-browser", "alice-phone", &username, &domain)?;
    assert_eq!(outcome.password, again.password);
    println!("regenerated        : identical (nothing is ever stored)");

    // What the server actually holds (paper Table I): only hashes, IDs and
    // seeds — no passwords.
    println!(
        "\nserver data at rest:\n{}",
        system.server().user_record("alice")?.render_table_i()
    );
    Ok(())
}
