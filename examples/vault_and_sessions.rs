//! The §VIII extensions in action: the *vault* stores a user-chosen
//! password under the bilateral key, and the *session mechanism* lets one
//! phone confirmation authorize a bounded run of generations.
//!
//! ```sh
//! cargo run --example vault_and_sessions
//! ```

use amnesia::core::{Domain, PasswordPolicy, Username};
use amnesia::phone::ConfirmPolicy;
use amnesia::system::{AmnesiaSystem, SystemConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut system = AmnesiaSystem::new(SystemConfig::default().with_seed(21));
    system.add_browser("browser");
    system.add_phone("phone", 210);
    system.setup_user("erin", "master password", "browser", "phone")?;

    // --- Vault: keep a password you cannot change -------------------------
    // Some accounts (a router, a legacy system) have passwords the user
    // cannot regenerate. The vault stores them sealed under
    // k = SHA-512(T || Oid || sigma): the server at rest holds only AEAD
    // ciphertext.
    let u = Username::new("erin")?;
    let router = Domain::new("router.local")?;
    system.store_chosen_password(
        "browser",
        "phone",
        u.clone(),
        router.clone(),
        "Adm1n-R0uter!",
    )?;
    println!("vault: chosen password stored (sealed server-side)");

    let retrieved = system.generate_password("browser", "phone", &u, &router)?;
    assert_eq!(retrieved.password.as_str(), "Adm1n-R0uter!");
    println!(
        "vault: retrieval through the bilateral flow -> {}",
        retrieved.password
    );

    // Prove the at-rest representation is opaque.
    let dump = system.server().export_data_at_rest_for_attack_model();
    let account = dump[0].find_account(&u, &router).expect("vault row");
    match &account.kind {
        amnesia::server::AccountKind::Vaulted { ciphertext } => {
            assert!(!ciphertext
                .windows("Adm1n-R0uter!".len())
                .any(|w| w == "Adm1n-R0uter!".as_bytes()));
            println!(
                "vault: server breach would see {} opaque bytes",
                ciphertext.len()
            );
        }
        _ => unreachable!("stored as vaulted"),
    }

    // --- Session mechanism: confirm once, generate many --------------------
    let site = Domain::new("work.example.com")?;
    system.add_account(
        "browser",
        u.clone(),
        site.clone(),
        PasswordPolicy::default(),
    )?;
    system
        .phone_mut("phone")
        .unwrap()
        .set_confirm_policy(ConfirmPolicy::Manual);

    let uses = system.enable_generation_session("erin", "phone", "browser", 5)?;
    println!("\nsession: user confirmed once on the phone; {uses} auto-confirm uses granted");
    for i in 1..=5 {
        let outcome = system.generate_password("browser", "phone", &u, &site)?;
        println!(
            "session use {i}: {}… (remaining {})",
            &outcome.password.as_str()[..8],
            system.phone("phone").unwrap().session_grant_remaining()
        );
    }
    println!(
        "session exhausted; the next generation will notify the phone again \
         (notifications so far: {})",
        system.phone("phone").unwrap().notifications().len()
    );
    Ok(())
}
