#!/usr/bin/env sh
# Full offline verification of the workspace: the build must succeed with no
# crates registry, no vendored sources, and no network — the workspace has
# zero external dependencies (see DESIGN.md §6).
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --locked"
cargo build --release --offline --locked --workspace

echo "==> cargo test --offline"
cargo test -q --offline --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> amnesia-lint (secret-hygiene / dataflow / determinism / no-panic / hermeticity)"
# Fails on any finding not grandfathered in lint-baseline.txt. To waive one
# finding add `// lint: allow(<rule>) <reason>`; to accept new debt run
# `cargo run -p amnesia-lint -- --update-baseline` and commit the file.
# The full-workspace analysis must also finish inside its 10 s budget —
# the gate has to stay cheap enough to run on every PR.
lint_start=$(date +%s)
cargo run -q --release --offline --locked -p amnesia-lint
lint_elapsed=$(( $(date +%s) - lint_start ))
if [ "$lint_elapsed" -gt 10 ]; then
    echo "error: amnesia-lint took ${lint_elapsed}s (budget: 10s)" >&2
    exit 1
fi

echo "==> lint baseline is not growing"
# The committed baseline is a debt ledger: it must only shrink. A PR that
# needs to grandfather *new* debt must say so by editing this threshold.
lint_baseline_max=92
lint_baseline_count=$(grep -c '^[^#]' lint-baseline.txt)
if [ "$lint_baseline_count" -gt "$lint_baseline_max" ]; then
    echo "error: lint-baseline.txt has ${lint_baseline_count} entries (max: ${lint_baseline_max}); pay debt down instead of adding to it" >&2
    exit 1
fi

echo "==> no external dependencies declared"
if grep -rn 'serde\|rand\|proptest\|criterion\|crossbeam\|parking_lot\|bytes' \
    --include=Cargo.toml Cargo.toml crates/*/Cargo.toml; then
    echo "error: external dependency mention found in a manifest" >&2
    exit 1
fi

echo "==> telemetry report smoke run"
cargo run -q --release --offline --locked -p amnesia-bench \
    --bin telemetry_report >/dev/null

echo "==> crypto throughput smoke run (RFC 7914 KATs + KDF ladder sweep)"
# Quick-mode bench: runs the RFC 7914 scrypt known-answer vectors (the
# binary exits nonzero on any KAT mismatch), exercises the HMAC midstate /
# PBKDF2 fan-out hot path end to end, sweeps the KdfPolicy ladder, and
# self-validates every metric > 0. The committed baseline
# (BENCH_CRYPTO.json) is regenerated separately with a full run.
mkdir -p target
cargo run -q --release --offline --locked -p amnesia-bench \
    --bin bench_crypto -- --quick --out target/BENCH_CRYPTO.quick.json
for metric in hmac_msgs_per_sec pbkdf2_iters_per_sec e2e_generate_p50_ns \
    kdf_ladder; do
    if ! grep -q "\"$metric\"" target/BENCH_CRYPTO.quick.json; then
        echo "error: $metric missing from target/BENCH_CRYPTO.quick.json" >&2
        exit 1
    fi
done
if ! grep -q '"scrypt_kats": "pass"' target/BENCH_CRYPTO.quick.json; then
    echo "error: scrypt KATs did not pass in target/BENCH_CRYPTO.quick.json" >&2
    exit 1
fi
for rung in interactive balanced paranoid; do
    if ! grep -q "\"rung\":\"$rung\"" target/BENCH_CRYPTO.quick.json; then
        echo "error: ladder rung $rung missing from target/BENCH_CRYPTO.quick.json" >&2
        exit 1
    fi
done

echo "==> concurrent-session isolation tests"
# 256 interleaved generations over one network (FIFO and out-of-order
# profiles) plus the sim-vs-threaded differential check and the
# late-reply-after-timeout regression.
cargo test -q --offline --test concurrency

echo "==> security-property and failure-injection tests"
# Replay-window invariants (permuted/duplicated streams decrypt exactly
# once, system-wide replay rejection) and drop+retry convergence under
# out-of-order links.
cargo test -q --offline --test security_properties
cargo test -q --offline --test failure_injection

echo "==> fleet e2e and consistent-hash ring tests"
# Sharding transparency (byte-identity vs a single-host ground truth),
# cross-instance rendezvous forwarding, admission control, per-shard
# telemetry, and the ring balance/minimal-movement properties.
cargo test -q --offline -p amnesia-fleet --test fleet_e2e
cargo test -q --offline -p amnesia-fleet --test ring_props

echo "==> fleet scaling smoke run"
# Quick-mode sharded-fleet bench (6k users, shards {1,4}): population-
# sampled generation burst per shard count; fails unless the 4-shard
# sustained sim gen/s reaches 2x the single-shard figure. The committed
# baseline (BENCH_FLEET.json) is regenerated with a full run.
cargo run -q --release --offline --locked -p amnesia-bench \
    --bin bench_fleet -- --quick --out target/BENCH_FLEET.quick.json
for metric in sim_gens_per_sec latency_p99_ms; do
    if ! grep -q "\"$metric\"" target/BENCH_FLEET.quick.json; then
        echo "error: $metric missing from target/BENCH_FLEET.quick.json" >&2
        exit 1
    fi
done

echo "==> durable store write-path smoke run"
# Quick-mode store bench (20k entries): snapshot-per-write vs WAL vs
# group-committed WAL plus the recovery-time curve; the bin itself fails
# unless group commit reaches 10x the snapshot-per-write rate. The
# committed baseline (BENCH_STORE.json) is regenerated with a full run.
# Crash-recovery invariants (torn tail at every byte offset, bit flips,
# ack/fsync ordering) run as part of the failure_injection suite above.
cargo run -q --release --offline --locked -p amnesia-bench \
    --bin bench_store -- --quick --out target/BENCH_STORE.quick.json
for metric in wal_group_commit_wps snapshot_per_write_wps recover_ms; do
    if ! grep -q "\"$metric\"" target/BENCH_STORE.quick.json; then
        echo "error: $metric missing from target/BENCH_STORE.quick.json" >&2
        exit 1
    fi
done

echo "==> e2e throughput smoke run"
# Quick-mode batch driver (N ∈ {1, 256}): opens whole batches of sessions
# through generate_passwords_concurrent, fails on any lost session, and
# enforces the head-of-line gate — N=256 mean simulated latency must stay
# within 1.25x the N=1 mean. The committed baseline (BENCH_E2E.json) is
# regenerated with a full run.
cargo run -q --release --offline --locked -p amnesia-bench \
    --bin bench_e2e -- --quick --out target/BENCH_E2E.quick.json
if ! grep -q '"generations_per_sec"' target/BENCH_E2E.quick.json; then
    echo "error: generations_per_sec missing from target/BENCH_E2E.quick.json" >&2
    exit 1
fi

echo "OK: offline build, tests, formatting, lint, zero-dependency check, telemetry, crypto-bench, concurrency, security-property, fleet, store write-path and e2e-throughput runs passed"
