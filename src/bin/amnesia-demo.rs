//! Interactive (and pipeable) demo shell driving a full Amnesia deployment.
//!
//! ```sh
//! cargo run --bin amnesia-demo
//! # or scripted:
//! printf 'setup alice secret\nadd alice mail.google.com\ngen alice mail.google.com\nquit\n' \
//!   | cargo run --bin amnesia-demo
//! ```

use amnesia::core::{Domain, PasswordPolicy, Username};
use amnesia::system::{AmnesiaSystem, SystemConfig};
use std::io::{self, BufRead, Write};

const BROWSER: &str = "browser";
const PHONE: &str = "phone";

struct Shell {
    system: AmnesiaSystem,
    user: Option<(String, String)>, // (user_id, master password)
    phone_generation: u64,
    current_phone: String,
}

impl Shell {
    fn new(seed: u64) -> Self {
        let mut system = AmnesiaSystem::new(SystemConfig::default().with_seed(seed));
        system.add_browser(BROWSER);
        system.add_phone(PHONE, seed ^ 0x5a5a);
        Shell {
            system,
            user: None,
            phone_generation: 0,
            current_phone: PHONE.to_string(),
        }
    }

    fn account(&self, username: &str, domain: &str) -> Result<(Username, Domain), String> {
        Ok((
            Username::new(username).map_err(|e| e.to_string())?,
            Domain::new(domain).map_err(|e| e.to_string())?,
        ))
    }

    fn require_user(&self) -> Result<(String, String), String> {
        self.user
            .clone()
            .ok_or_else(|| "no user: run `setup <user> <mp>` first".into())
    }

    fn dispatch(&mut self, line: &str) -> Result<Option<String>, String> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.as_slice() {
            [] | ["#", ..] => Ok(None),
            ["help"] => Ok(Some(HELP.trim().to_string())),
            ["quit"] | ["exit"] => Err("__quit__".into()),

            ["setup", user, mp] => {
                self.system
                    .setup_user(user, mp, BROWSER, &self.current_phone)
                    .map_err(|e| e.to_string())?;
                self.user = Some((user.to_string(), mp.to_string()));
                Ok(Some(format!(
                    "registered {user}, phone paired via captcha, Kp backed up to the cloud"
                )))
            }
            ["login", user, mp] => {
                self.system
                    .login(BROWSER, user, mp)
                    .map_err(|e| e.to_string())?;
                self.user = Some((user.to_string(), mp.to_string()));
                Ok(Some(format!("logged in as {user}")))
            }
            ["add", username, domain] => {
                let (u, d) = self.account(username, domain)?;
                self.system
                    .add_account(BROWSER, u, d, PasswordPolicy::default())
                    .map_err(|e| e.to_string())?;
                Ok(Some(format!("managing {username}@{domain}")))
            }
            ["gen", username, domain] => {
                let (u, d) = self.account(username, domain)?;
                let phone = self.current_phone.clone();
                let outcome = self
                    .system
                    .generate_password(BROWSER, &phone, &u, &d)
                    .map_err(|e| e.to_string())?;
                Ok(Some(format!(
                    "{}  ({} end-to-end)",
                    outcome.password, outcome.latency
                )))
            }
            ["vault", username, domain, password] => {
                let (u, d) = self.account(username, domain)?;
                let phone = self.current_phone.clone();
                self.system
                    .store_chosen_password(BROWSER, &phone, u, d, password)
                    .map_err(|e| e.to_string())?;
                Ok(Some(
                    "chosen password sealed under the bilateral key".into(),
                ))
            }
            ["session", uses] => {
                let uses: u32 = uses
                    .parse()
                    .map_err(|_| "uses must be a number".to_string())?;
                let (user, _) = self.require_user()?;
                let phone = self.current_phone.clone();
                let granted = self
                    .system
                    .enable_generation_session(&user, &phone, BROWSER, uses)
                    .map_err(|e| e.to_string())?;
                Ok(Some(format!(
                    "session active: {granted} auto-confirmed generations"
                )))
            }
            ["list"] => {
                let accounts = self
                    .system
                    .list_accounts(BROWSER)
                    .map_err(|e| e.to_string())?;
                let mut out = format!("{} account(s):\n", accounts.len());
                for a in accounts {
                    out.push_str(&format!("  {a}\n"));
                }
                Ok(Some(out.trim_end().to_string()))
            }
            ["rotate", username, domain] => {
                let (u, d) = self.account(username, domain)?;
                self.system
                    .rotate_seed(BROWSER, u, d)
                    .map_err(|e| e.to_string())?;
                Ok(Some(
                    "seed rotated: the account now generates a new password".into(),
                ))
            }
            ["recover"] => {
                let (user, mp) = self.require_user()?;
                let old_phone = self.current_phone.clone();
                self.system.remove_phone(&old_phone);
                self.phone_generation += 1;
                let new_phone = format!("{PHONE}-{}", self.phone_generation);
                let outcome = self
                    .system
                    .recover_phone(
                        &user,
                        &mp,
                        BROWSER,
                        &new_phone,
                        0x9e + self.phone_generation,
                    )
                    .map_err(|e| e.to_string())?;
                self.current_phone = new_phone.clone();
                let mut out = format!(
                    "recovered onto {new_phone}; reset these old passwords on their sites:\n"
                );
                for c in outcome.credentials {
                    out.push_str(&format!(
                        "  {}@{} -> {}\n",
                        c.username, c.domain, c.old_password
                    ));
                }
                Ok(Some(out.trim_end().to_string()))
            }
            ["chpass", old_mp, new_mp] => {
                let (user, _) = self.require_user()?;
                let phone = self.current_phone.clone();
                self.system
                    .change_master_password(&user, old_mp, new_mp, BROWSER, &phone)
                    .map_err(|e| e.to_string())?;
                self.user = Some((user, new_mp.to_string()));
                Ok(Some(
                    "master password changed (phone Pid served as proof)".into(),
                ))
            }
            ["tablei"] => {
                let (user, _) = self.require_user()?;
                let record = self
                    .system
                    .server()
                    .user_record(&user)
                    .map_err(|e| e.to_string())?;
                Ok(Some(record.render_table_i()))
            }
            other => Err(format!("unknown command {:?}; try `help`", other.join(" "))),
        }
    }
}

const HELP: &str = r#"
commands:
  setup <user> <mp>              register + pair phone + cloud backup
  login <user> <mp>              log the browser in
  add <username> <domain>        manage a website account
  gen <username> <domain>        generate its password (phone confirms)
  vault <u> <d> <password>       store a chosen password (sealed)
  session <uses>                 enable N auto-confirmed generations
  list                           list managed accounts
  rotate <username> <domain>     change an account's generated password
  recover                        lost phone: recover onto a new device
  chpass <old-mp> <new-mp>       rotate the master password
  tablei                         show the server's data at rest (Table I)
  help | quit
"#;

fn main() {
    let mut shell = Shell::new(0xDE40);
    let stdin = io::stdin();
    let interactive = atty_stdin();
    if interactive {
        println!("amnesia-demo — type `help` for commands");
    }
    loop {
        if interactive {
            print!("amnesia> ");
            io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        match shell.dispatch(line.trim()) {
            Ok(None) => {}
            Ok(Some(output)) => println!("{output}"),
            Err(e) if e == "__quit__" => break,
            Err(e) => println!("error: {e}"),
        }
    }
}

/// Minimal TTY check without adding a dependency: assume non-interactive
/// when the `AMNESIA_DEMO_BATCH` env var is set, interactive otherwise.
/// (Piped usage works either way; the prompt just goes to stdout.)
fn atty_stdin() -> bool {
    std::env::var_os("AMNESIA_DEMO_BATCH").is_none()
}
