//! Facade crate re-exporting the full Amnesia reproduction.
//!
//! See the individual crates for detailed documentation:
//! [`amnesia_core`] (generative algorithms), [`amnesia_system`]
//! (the wired-up simulated deployment), and the rest of the workspace.

#![forbid(unsafe_code)]

pub use amnesia_attacks as attacks;
pub use amnesia_baselines as baselines;
pub use amnesia_client as client;
pub use amnesia_cloud as cloud;
pub use amnesia_core as core;
pub use amnesia_crypto as crypto;
pub use amnesia_eval as eval;
pub use amnesia_fleet as fleet;
pub use amnesia_net as net;
pub use amnesia_phone as phone;
pub use amnesia_rendezvous as rendezvous;
pub use amnesia_server as server;
pub use amnesia_store as store;
pub use amnesia_system as system;
pub use amnesia_telemetry as telemetry;
pub use amnesia_userstudy as userstudy;
