//! Concurrent-session behaviour of the deployment and cross-runtime
//! equivalence of the shared session engine.
//!
//! The simulated deployment drives every flow through the sans-IO
//! [`Session`](amnesia::system::Session) engine keyed by `request_id`, so
//! hundreds of generations can be in flight over one network. These tests
//! pin the two properties that makes that safe:
//!
//! * **isolation** — 256 interleaved sessions each receive exactly the
//!   password (and latency attribution) of their own account, bit-identical
//!   to a sequential run;
//! * **runtime equivalence** — the threaded deployment, driving the *same*
//!   engine over mpsc channels, derives byte-identical passwords from the
//!   same component seeds.

use amnesia::core::{Domain, PasswordPolicy, Username};
use amnesia::net::SimDuration;
use amnesia::phone::ConfirmPolicy;
use amnesia::system::realtime::{RealtimeConfig, RealtimeDeployment};
use amnesia::system::{AmnesiaSystem, GenerationRequest, NetProfile, SystemConfig};

const N: usize = 256;

fn concurrent_deployment(
    seed: u64,
    profile: NetProfile,
) -> (AmnesiaSystem, Vec<(Username, Domain)>) {
    let mut sys = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(seed)
            .with_profile(profile)
            .with_table_size(256),
    );
    sys.add_browser("browser");
    sys.add_phone("phone", seed.wrapping_add(1));
    sys.setup_user("crowd", "master password", "browser", "phone")
        .unwrap();
    sys.phone_mut("phone")
        .unwrap()
        .set_confirm_policy(ConfirmPolicy::AutoConfirm);
    let accounts: Vec<(Username, Domain)> = (0..N)
        .map(|i| {
            let u = Username::new(format!("user{i}")).unwrap();
            let d = Domain::new(format!("site{i}.example.com")).unwrap();
            sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
                .unwrap();
            (u, d)
        })
        .collect();
    (sys, accounts)
}

fn requests(accounts: &[(Username, Domain)]) -> Vec<GenerationRequest> {
    accounts
        .iter()
        .map(|(u, d)| GenerationRequest {
            browser: "browser".into(),
            phone: "phone".into(),
            username: u.clone(),
            domain: d.clone(),
        })
        .collect()
}

#[test]
fn two_hundred_fifty_six_interleaved_sessions_stay_isolated() {
    let (mut sys, accounts) = concurrent_deployment(0xC0, NetProfile::lan());
    let results = sys.generate_passwords_concurrent(&requests(&accounts), 1);
    assert_eq!(results.len(), N);

    // Sequential ground truth on an identical deployment.
    let (mut reference, ref_accounts) = concurrent_deployment(0xC0, NetProfile::lan());
    for (result, (u, d)) in results.iter().zip(&ref_accounts) {
        let outcome = result.as_ref().unwrap_or_else(|e| panic!("{u}@{d}: {e}"));
        // The outcome is attributed to the right account...
        assert_eq!(&outcome.account.username, u);
        assert_eq!(&outcome.account.domain, d);
        // ...and its password is exactly the sequential one — no bleed from
        // the 255 sessions sharing the wire.
        let expected = reference
            .generate_password("browser", "phone", u, d)
            .unwrap();
        assert_eq!(outcome.password, expected.password, "{u}@{d}");
    }
    assert!(sys.faults().is_empty(), "{:?}", sys.faults());
    assert_eq!(sys.generation_latencies().len(), N);
}

#[test]
fn interleaved_sessions_stay_isolated_under_out_of_order_links() {
    // Same isolation property, but over the jittered wifi profile whose
    // links now deliver out of order (per-frame latency sampling, no FIFO
    // clamp): the sliding replay window must absorb the reordering without
    // a single dispatch fault or cross-session bleed.
    let (mut sys, accounts) = concurrent_deployment(0xC2, NetProfile::wifi());
    let results = sys.generate_passwords_concurrent(&requests(&accounts), 1);
    assert_eq!(results.len(), N);

    let (mut reference, ref_accounts) = concurrent_deployment(0xC2, NetProfile::wifi());
    for (result, (u, d)) in results.iter().zip(&ref_accounts) {
        let outcome = result.as_ref().unwrap_or_else(|e| panic!("{u}@{d}: {e}"));
        assert_eq!(&outcome.account.username, u);
        assert_eq!(&outcome.account.domain, d);
        let expected = reference
            .generate_password("browser", "phone", u, d)
            .unwrap();
        assert_eq!(outcome.password, expected.password, "{u}@{d}");
    }
    assert!(sys.faults().is_empty(), "{:?}", sys.faults());
    assert_eq!(sys.generation_latencies().len(), N);
}

#[test]
fn late_reply_after_timeout_is_counted_not_double_resolved() {
    // A timeout that fires while the PasswordReady is still in flight: the
    // session must fail exactly once (timer first), and the late-but-valid
    // reply must be counted as `late_reply`, not resolve the session a
    // second time. Over the 1 ms lan profile the timer is last re-armed at
    // t=2 ms (RequestPushed ack) and the PasswordReady is sent at t=4 ms,
    // landing at t=5 ms; a 2.5 ms timeout therefore expires at t=4.5 ms,
    // while the reply is in flight.
    let mut sys = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(0xFA)
            .with_table_size(64)
            .with_profile(NetProfile::lan())
            .with_session_timeout(SimDuration::from_micros(2_500)),
    );
    sys.add_browser("browser");
    sys.add_phone("phone", 0xFB);
    sys.setup_user("tardy", "mp", "browser", "phone").unwrap();
    let u = Username::new("tardy").unwrap();
    let d = Domain::new("late.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();

    let err = sys
        .generate_password("browser", "phone", &u, &d)
        .unwrap_err();
    assert!(err.to_string().contains("PasswordReady"), "{err}");

    // The reply is still on the wire; delivering it must not resurrect the
    // settled (and already removed) session.
    sys.pump();
    let snapshot = sys.telemetry().snapshot();
    assert_eq!(snapshot.counters["system.session.timeouts"], 1);
    assert_eq!(snapshot.counters["system.session.late_replies"], 1);
    assert!(
        !snapshot.counters.contains_key("system.generations"),
        "a late reply must never count as a completed generation"
    );
    assert!(sys.faults().is_empty(), "{:?}", sys.faults());
}

#[test]
fn concurrent_latencies_are_attributed_per_session() {
    // Under a jittered profile each session's measured window differs; the
    // outcome must carry its own, not the last one recorded globally.
    let (mut sys, accounts) = concurrent_deployment(0xC1, NetProfile::wifi());
    let results = sys.generate_passwords_concurrent(&requests(&accounts), 1);

    let mut latencies = Vec::with_capacity(N);
    for result in &results {
        let outcome = result.as_ref().unwrap();
        assert!(outcome.latency > SimDuration::ZERO);
        latencies.push(outcome.latency);
    }
    // All 256 samples were recorded, and the set of per-outcome latencies
    // matches the recorded set (completion order may differ from request
    // order).
    let mut recorded: Vec<SimDuration> = sys.generation_latencies().to_vec();
    recorded.sort();
    latencies.sort();
    assert_eq!(latencies, recorded);
    // Attribution is non-trivial: the windows are not all identical.
    assert!(latencies.first() != latencies.last());
}

#[test]
fn batch_interleaving_is_deterministic() {
    let run = |seed: u64| {
        let (mut sys, accounts) = concurrent_deployment(seed, NetProfile::wifi());
        sys.generate_passwords_concurrent(&requests(&accounts), 1)
            .into_iter()
            .map(|r| {
                let o = r.unwrap();
                (o.password.as_str().to_string(), o.latency)
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(7), run(7));
}

#[test]
fn sim_and_realtime_runtimes_derive_identical_passwords() {
    // Build the simulated deployment, then mirror its components in the
    // threaded runtime: same server seed (exported for exactly this), same
    // phone seed, same table size. Both drive the same session engine, so
    // the same user/account inputs must produce byte-identical passwords.
    let phone_seed = 0xD1CE;
    let table_size = 512;
    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_table_size(table_size));
    sys.add_browser("browser");
    sys.add_phone("phone", phone_seed);
    sys.setup_user("mirror", "master password", "browser", "phone")
        .unwrap();
    sys.phone_mut("phone")
        .unwrap()
        .set_confirm_policy(ConfirmPolicy::AutoConfirm);

    let mut rt = RealtimeDeployment::start_with(RealtimeConfig {
        server_seed: sys.server_seed(),
        phone_seed,
        table_size,
        kdf_policy: amnesia::crypto::KdfPolicy::PAPER,
    });
    rt.setup_user("mirror", "master password").unwrap();

    for (user, site) in [
        ("mirror-a", "alpha.example.com"),
        ("mirror-b", "beta.example.com"),
    ] {
        let u = Username::new(user).unwrap();
        let d = Domain::new(site).unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        rt.add_account(user, site).unwrap();

        let simulated = sys.generate_password("browser", "phone", &u, &d).unwrap();
        let (threaded, _) = rt.generate(user, site).unwrap();
        assert_eq!(
            simulated.password.as_str(),
            threaded,
            "{user}@{site}: the two runtimes disagree"
        );
    }
    rt.shutdown();
}

/// ISSUE 7: the bounded in-flight cap admits a batch through a sliding
/// window. All requests still succeed with byte-identical passwords, the
/// session table never exceeds the cap, and the peak gauge records it.
#[test]
fn bounded_inflight_cap_slides_without_losing_requests() {
    let (mut capped, accounts) = {
        let mut sys = AmnesiaSystem::new(
            SystemConfig::default()
                .with_seed(0xCA)
                .with_table_size(256)
                .with_max_inflight(4),
        );
        sys.add_browser("browser");
        sys.add_phone("phone", 0xCB);
        sys.setup_user("crowd", "master password", "browser", "phone")
            .unwrap();
        sys.phone_mut("phone")
            .unwrap()
            .set_confirm_policy(ConfirmPolicy::AutoConfirm);
        let accounts: Vec<(Username, Domain)> = (0..64)
            .map(|i| {
                let u = Username::new(format!("user{i}")).unwrap();
                let d = Domain::new(format!("site{i}.example.com")).unwrap();
                sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
                    .unwrap();
                (u, d)
            })
            .collect();
        (sys, accounts)
    };
    // Reset so the peak gauge observes only the batch, not the setup.
    capped.telemetry().reset();
    let results = capped.generate_passwords_concurrent(&requests(&accounts), 1);
    assert!(
        results.iter().all(|r| r.is_ok()),
        "capped batch must finish"
    );

    let snapshot = capped.telemetry().snapshot();
    let peak = snapshot.gauges["system.session.inflight_peak"];
    assert!(peak <= 4, "cap 4 exceeded: peak {peak}");
    assert!(peak >= 1, "peak gauge not recording");
    assert_eq!(snapshot.gauges["system.session.inflight"], 0);

    // Same passwords as an uncapped run of the identical deployment.
    let mut open = AmnesiaSystem::new(SystemConfig::default().with_seed(0xCA).with_table_size(256));
    open.add_browser("browser");
    open.add_phone("phone", 0xCB);
    open.setup_user("crowd", "master password", "browser", "phone")
        .unwrap();
    open.phone_mut("phone")
        .unwrap()
        .set_confirm_policy(ConfirmPolicy::AutoConfirm);
    for (u, d) in &accounts {
        open.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
    }
    let open_results = open.generate_passwords_concurrent(&requests(&accounts), 1);
    for (capped_r, open_r) in results.iter().zip(&open_results) {
        assert_eq!(
            capped_r.as_ref().unwrap().password.as_str(),
            open_r.as_ref().unwrap().password.as_str(),
            "the cap must not change what gets generated"
        );
    }
}
