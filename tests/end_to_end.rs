//! Cross-crate integration: full deployments with multiple users and
//! devices, restart-from-snapshot, and deterministic replay.

use amnesia::core::{Domain, PasswordPolicy, Username};
use amnesia::phone::ConfirmPolicy;
use amnesia::system::{AmnesiaSystem, SystemConfig};

fn config(seed: u64) -> SystemConfig {
    SystemConfig::default().with_seed(seed).with_table_size(256)
}

#[test]
fn two_users_are_fully_isolated() {
    let mut sys = AmnesiaSystem::new(config(1));
    for (user, browser, phone, seed) in [
        ("alice", "a-browser", "a-phone", 10u64),
        ("bob", "b-browser", "b-phone", 20),
    ] {
        sys.add_browser(browser);
        sys.add_phone(phone, seed);
        sys.setup_user(user, &format!("{user} master"), browser, phone)
            .unwrap();
    }

    // Same (username, domain) pair under both users.
    let u = Username::new("shared-handle").unwrap();
    let d = Domain::new("same-site.example.com").unwrap();
    for browser in ["a-browser", "b-browser"] {
        sys.add_account(browser, u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
    }
    let pa = sys
        .generate_password("a-browser", "a-phone", &u, &d)
        .unwrap();
    let pb = sys
        .generate_password("b-browser", "b-phone", &u, &d)
        .unwrap();
    // Different Oid, sigma and entry tables: passwords must differ.
    assert_ne!(pa.password, pb.password);

    // Bob's master password cannot open Alice's account.
    assert!(sys.login("b-browser", "alice", "bob master").is_err());
}

#[test]
fn server_restart_from_snapshot_preserves_passwords() {
    let dir = std::env::temp_dir().join("amnesia-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("server-{}.adb", std::process::id()));

    let mut sys = AmnesiaSystem::new(config(2));
    sys.add_browser("browser");
    sys.add_phone("phone", 30);
    sys.setup_user("carol", "mp", "browser", "phone").unwrap();
    let u = Username::new("carol").unwrap();
    let d = Domain::new("persist.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    let before = sys.generate_password("browser", "phone", &u, &d).unwrap();

    // Snapshot the server database and "restart" onto a fresh server
    // process holding the same data.
    sys.server().save_to(&path).unwrap();
    let restarted = amnesia::server::AmnesiaServer::open(
        amnesia::server::ServerConfig {
            endpoint: "amnesia-server".into(),
            seed: 999,
            kdf_policy: amnesia::crypto::KdfPolicy::PAPER,
        },
        &path,
    )
    .unwrap();

    // The restarted server still verifies the password and derives the same
    // password from the same token path (offline check via the record).
    let record = restarted.user_record("carol").unwrap();
    let account = record.find_account(&u, &d).unwrap();
    let table = sys.phone("phone").unwrap().entry_table();
    let offline =
        amnesia::core::derive_password(&account.entry, &record.oid, table, &account.policy)
            .unwrap();
    assert_eq!(offline, before.password);
    std::fs::remove_file(path).unwrap();
}

#[test]
fn phone_persistence_roundtrip_preserves_tokens() {
    let dir = std::env::temp_dir().join("amnesia-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("phone-{}.adb", std::process::id()));

    let mut sys = AmnesiaSystem::new(config(3));
    sys.add_browser("browser");
    sys.add_phone("phone", 40);
    sys.setup_user("dave", "mp", "browser", "phone").unwrap();
    let u = Username::new("dave").unwrap();
    let d = Domain::new("site.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    let before = sys.generate_password("browser", "phone", &u, &d).unwrap();

    sys.phone("phone").unwrap().save_to(&path).unwrap();
    let reopened =
        amnesia::phone::AmnesiaPhone::open(amnesia::phone::PhoneConfig::new("phone", 0), &path)
            .unwrap();

    // Same Kp ⇒ same password when combined with the server's Ks.
    let record = sys.server().user_record("dave").unwrap();
    let account = record.find_account(&u, &d).unwrap();
    let offline = amnesia::core::derive_password(
        &account.entry,
        &record.oid,
        reopened.entry_table(),
        &account.policy,
    )
    .unwrap();
    assert_eq!(offline, before.password);
    std::fs::remove_file(path).unwrap();
}

#[test]
fn identical_seeds_replay_identically() {
    let run = |seed: u64| {
        let mut sys = AmnesiaSystem::new(config(seed));
        sys.add_browser("browser");
        sys.add_phone("phone", seed + 1);
        sys.setup_user("erin", "mp", "browser", "phone").unwrap();
        let u = Username::new("erin").unwrap();
        let d = Domain::new("replay.example.com").unwrap();
        sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
            .unwrap();
        let o = sys.generate_password("browser", "phone", &u, &d).unwrap();
        (o.password.as_str().to_string(), o.latency)
    };
    assert_eq!(run(77), run(77));
    assert_ne!(run(77).0, run(78).0);
}

#[test]
fn seed_rotation_regenerates_only_that_account() {
    let mut sys = AmnesiaSystem::new(config(4));
    sys.add_browser("browser");
    sys.add_phone("phone", 50);
    sys.setup_user("fred", "mp", "browser", "phone").unwrap();
    let accounts: Vec<(Username, Domain)> = (0..3)
        .map(|i| {
            let u = Username::new(format!("fred{i}")).unwrap();
            let d = Domain::new(format!("s{i}.example.com")).unwrap();
            sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
                .unwrap();
            (u, d)
        })
        .collect();
    let before: Vec<_> = accounts
        .iter()
        .map(|(u, d)| {
            sys.generate_password("browser", "phone", u, d)
                .unwrap()
                .password
        })
        .collect();

    sys.rotate_seed("browser", accounts[1].0.clone(), accounts[1].1.clone())
        .unwrap();

    let after: Vec<_> = accounts
        .iter()
        .map(|(u, d)| {
            sys.generate_password("browser", "phone", u, d)
                .unwrap()
                .password
        })
        .collect();
    assert_eq!(before[0], after[0]);
    assert_ne!(before[1], after[1]);
    assert_eq!(before[2], after[2]);
}

#[test]
fn recovery_unregisters_the_old_device_at_the_rendezvous() {
    let mut sys = AmnesiaSystem::new(config(5));
    sys.add_browser("browser");
    sys.add_phone("phone", 60);
    sys.setup_user("gina", "mp", "browser", "phone").unwrap();

    let old_reg = sys
        .server()
        .user_record("gina")
        .unwrap()
        .registration_id
        .clone()
        .unwrap();
    assert!(sys.gcm_mut().is_registered(&old_reg));

    sys.remove_phone("phone");
    sys.recover_phone("gina", "mp", "browser", "phone-2", 61)
        .unwrap();

    assert!(!sys.gcm_mut().is_registered(&old_reg));
    let new_reg = sys
        .server()
        .user_record("gina")
        .unwrap()
        .registration_id
        .clone()
        .unwrap();
    assert_ne!(new_reg, old_reg);
    assert!(sys.gcm_mut().is_registered(&new_reg));
}

#[test]
fn cloud_outage_blocks_recovery_until_restored() {
    let mut sys = AmnesiaSystem::new(config(6));
    sys.add_browser("browser");
    sys.add_phone("phone", 70);
    sys.setup_user("hank", "mp", "browser", "phone").unwrap();
    sys.remove_phone("phone");

    sys.cloud_mut().set_available(false);
    let err = sys
        .recover_phone("hank", "mp", "browser", "phone-2", 71)
        .unwrap_err();
    assert!(err.to_string().contains("unavailable"), "{err}");

    sys.cloud_mut().set_available(true);
    sys.recover_phone("hank", "mp", "browser", "phone-2", 71)
        .unwrap();
}

#[test]
fn generation_with_manual_confirmation_and_notification_trail() {
    let mut sys = AmnesiaSystem::new(config(7));
    sys.add_browser("browser");
    sys.add_phone("phone", 80);
    sys.setup_user("iris", "mp", "browser", "phone").unwrap();
    let u = Username::new("iris").unwrap();
    let d = Domain::new("n.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();

    sys.phone_mut("phone")
        .unwrap()
        .set_confirm_policy(ConfirmPolicy::Manual);
    sys.generate_password("browser", "phone", &u, &d).unwrap();

    // The Fig. 2(b) notification recorded the requesting origin.
    let notifications = sys.phone("phone").unwrap().notifications().to_vec();
    assert_eq!(notifications.len(), 1);
    assert_eq!(notifications[0].origin, "browser");
}

#[test]
fn mobile_browser_takes_the_role_of_the_pc() {
    // Paper §III: the six-step flow is unchanged when the browser runs on
    // the phone itself — only the access link differs.
    let mut sys = AmnesiaSystem::new(config(8));
    sys.add_mobile_browser("phone-browser");
    sys.add_phone("phone", 90);
    sys.setup_user("jane", "mp", "phone-browser", "phone")
        .unwrap();
    let u = Username::new("jane").unwrap();
    let d = Domain::new("mobile.example.com").unwrap();
    sys.add_account(
        "phone-browser",
        u.clone(),
        d.clone(),
        PasswordPolicy::default(),
    )
    .unwrap();
    let outcome = sys
        .generate_password("phone-browser", "phone", &u, &d)
        .unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);

    // And the result agrees with a desktop browser on the same account.
    sys.add_browser("desktop");
    sys.login("desktop", "jane", "mp").unwrap();
    let from_desktop = sys.generate_password("desktop", "phone", &u, &d).unwrap();
    assert_eq!(outcome.password, from_desktop.password);
}
