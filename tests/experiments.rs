//! Experiment harness smoke tests: every table/figure regenerator produces
//! paper-shaped output (the bench binaries print the full artifacts; these
//! tests pin the claims).

use amnesia::core::analysis;
use amnesia::core::{CharacterTable, PasswordPolicy};
use amnesia::eval::{paper_schemes, render_table, Group, Property, Rating};
use amnesia::system::latency::run_latency_trials;
use amnesia::system::NetProfile;

#[test]
fn figure3_wifi_and_4g_match_paper_statistics() {
    // Paper: Wifi x̄ 785.3 σ 171.5; 4G x̄ 978.7 σ 137.9 (100 trials each).
    let wifi = run_latency_trials(NetProfile::wifi(), 100, 0xF163).unwrap();
    let cell = run_latency_trials(NetProfile::cellular_4g(), 100, 0xF163).unwrap();
    assert_eq!(wifi.samples_ms.len(), 100);
    assert_eq!(cell.samples_ms.len(), 100);
    // Generous tolerances for a 100-sample stochastic draw.
    assert!(
        (wifi.mean_ms - 785.3).abs() < 60.0,
        "wifi mean {}",
        wifi.mean_ms
    );
    assert!(
        (wifi.std_ms - 171.5).abs() < 60.0,
        "wifi sd {}",
        wifi.std_ms
    );
    assert!(
        (cell.mean_ms - 978.7).abs() < 60.0,
        "4g mean {}",
        cell.mean_ms
    );
    assert!((cell.std_ms - 137.9).abs() < 60.0, "4g sd {}", cell.std_ms);
    // Shape: Wifi beats 4G; both within the "not a big issue" regime.
    assert!(wifi.mean_ms < cell.mean_ms);
    assert!(cell.mean_ms < 1500.0);
}

#[test]
fn table3_rows_and_shape() {
    let schemes = paper_schemes();
    assert_eq!(schemes.len(), 5);
    let text = render_table(&schemes);
    assert!(text.contains("Amnesia"));
    // Shape claims from §VI-A: Amnesia does comparatively well in security
    // and deployability, lags a bit in usability vs retrieval managers.
    let get = |name: &str| schemes.iter().find(|s| s.name == name).unwrap();
    let amnesia = get("Amnesia");
    let lastpass = get("LastPass");
    assert!(amnesia.group_score(Group::Security) > lastpass.group_score(Group::Security));
    assert!(
        amnesia.group_score(Group::Deployability) >= lastpass.group_score(Group::Deployability)
    );
    assert!(amnesia.group_score(Group::Usability) <= lastpass.group_score(Group::Usability));
    // The only deployability miss is maturity.
    assert_eq!(amnesia.rating(Property::Mature), Rating::No);
}

#[test]
fn section4e_composition_and_spaces() {
    // Closed form: 94^32 ≈ 1.38e63 and 5000^16 ≈ 1.53e59.
    assert_eq!(
        analysis::password_space(&PasswordPolicy::default()).scientific(),
        "1.38e63"
    );
    assert_eq!(analysis::token_space(5000).scientific(), "1.53e59");
    // Expected composition rounds to the paper's 9/9/3/11.
    let comp = analysis::expected_composition(&CharacterTable::full(), 32);
    let rounded: Vec<i64> = comp.iter().map(|(_, v)| v.round() as i64).collect();
    assert_eq!(rounded, vec![9, 9, 3, 11]);
}

#[test]
fn user_study_headline_numbers() {
    let report = amnesia::userstudy::run_study(0xF164).unwrap();
    let t = &report.tabulation;
    assert_eq!(report.population.len(), 31);
    assert_eq!(report.completed_tasks, 31 * 6);
    assert_eq!(t.believes_more_secure, 27);
    assert_eq!(t.registration_convenient, 24); // 77.4%
    assert_eq!(t.add_account_easy, 26); // 83.8%
    assert_eq!(t.generation_easy, 26); // 83.8%
    assert_eq!(t.prefers_amnesia, 22); // 70.9%
    assert_eq!(t.male, 21);
    assert_eq!(t.female, 10);
    // Figure 4 histograms all cover the full population.
    for h in [&t.reuse, &t.length, &t.technique, &t.change] {
        assert_eq!(h.total(), 31);
    }
}

#[test]
fn table_1_and_2_render_from_live_components() {
    use amnesia::phone::{AmnesiaPhone, PhoneConfig};
    use amnesia::system::{AmnesiaSystem, SystemConfig};

    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(0xAB).with_table_size(128));
    sys.add_browser("b");
    sys.add_phone("p", 1);
    sys.setup_user("alice", "mp", "b", "p").unwrap();
    let table1 = sys.server().user_record("alice").unwrap().render_table_i();
    assert!(table1.contains("Oid"));
    assert!(table1.contains("Registration ID"));

    let phone = AmnesiaPhone::new(PhoneConfig::new("t2", 2));
    let table2 = phone.render_table_ii();
    assert!(table2.contains("Pid"));
    assert!(table2.contains("e5000"));
}

#[test]
fn latency_ablation_entry_table_size_is_flat() {
    // Token cost is 16 lookups + SHA-256 regardless of N; end-to-end
    // latency therefore must not grow with table size.
    let small = run_latency_trials_with_table(64, 0xAA);
    let large = run_latency_trials_with_table(5000, 0xAA);
    assert!(
        (small - large).abs() < 120.0,
        "small {small} vs large {large}"
    );
}

fn run_latency_trials_with_table(table_size: usize, seed: u64) -> f64 {
    use amnesia::core::{Domain, PasswordPolicy, Username};
    use amnesia::phone::ConfirmPolicy;
    use amnesia::system::{AmnesiaSystem, SystemConfig};

    let mut sys = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(seed)
            .with_profile(NetProfile::wifi())
            .with_table_size(table_size),
    );
    sys.add_browser("browser");
    sys.add_phone("phone", seed);
    sys.setup_user("x", "mp", "browser", "phone").unwrap();
    sys.phone_mut("phone")
        .unwrap()
        .set_confirm_policy(ConfirmPolicy::AutoConfirm);
    let u = Username::new("x").unwrap();
    let d = Domain::new("abl.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    let mut total = 0.0;
    for _ in 0..30 {
        total += sys
            .generate_password("browser", "phone", &u, &d)
            .unwrap()
            .latency
            .as_millis_f64();
    }
    total / 30.0
}
