//! Failure injection: lossy push delivery, malformed traffic, misuse
//! resistance across the deployment, and crash-consistency of the store's
//! durable write path (torn WAL tails, bit flips, ack/fsync ordering).

use amnesia::core::{Domain, PasswordPolicy, Username};
use amnesia::system::{AmnesiaSystem, NetProfile, SystemConfig, GCM_ENDPOINT, SERVER_ENDPOINT};

fn lossy_system(seed: u64, drop_p: f64) -> (AmnesiaSystem, Username, Domain) {
    let mut sys = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(seed)
            .with_table_size(64)
            .with_profile(NetProfile::lan().with_push_drop_probability(drop_p)),
    );
    sys.add_browser("browser");
    sys.add_phone("phone", seed + 1);
    sys.setup_user("alice", "mp", "browser", "phone").unwrap();
    let u = Username::new("alice").unwrap();
    let d = Domain::new("lossy.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    (sys, u, d)
}

#[test]
fn dropped_push_fails_one_attempt_and_retry_recovers() {
    // 100% push loss: generation must fail cleanly, not hang or panic.
    let (mut sys, u, d) = lossy_system(1, 1.0);
    let err = sys
        .generate_password("browser", "phone", &u, &d)
        .unwrap_err();
    assert!(err.to_string().contains("PasswordReady"), "{err}");
    assert!(sys.net_mut().dropped_count() >= 1);

    // 50% loss: bounded retry succeeds (deterministic seed).
    let (mut sys, u, d) = lossy_system(2, 0.5);
    let outcome = sys
        .generate_password_with_retry("browser", "phone", &u, &d, 10)
        .unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);
}

#[test]
fn retry_on_reliable_network_is_single_shot() {
    let (mut sys, u, d) = lossy_system(3, 0.0);
    let first = sys
        .generate_password_with_retry("browser", "phone", &u, &d, 5)
        .unwrap();
    let direct = sys.generate_password("browser", "phone", &u, &d).unwrap();
    assert_eq!(first.password, direct.password);
    assert_eq!(sys.net_mut().dropped_count(), 0);
}

#[test]
fn drop_and_retry_converge_under_out_of_order_links() {
    // Jittered wifi links deliver out of order (non-FIFO is now the
    // default) *and* the push leg loses half its frames: bounded retry must
    // still converge on the correct password, with no dispatch faults —
    // the replay window absorbs the reordering, retries absorb the loss.
    let mut sys = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(11)
            .with_table_size(64)
            .with_profile(NetProfile::wifi().with_push_drop_probability(0.5)),
    );
    sys.add_browser("browser");
    sys.add_phone("phone", 12);
    sys.setup_user("omar", "mp", "browser", "phone").unwrap();
    let u = Username::new("omar").unwrap();
    let d = Domain::new("jitter.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();

    let outcome = sys
        .generate_password_with_retry("browser", "phone", &u, &d, 10)
        .unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);
    assert!(sys.faults().is_empty(), "{:?}", sys.faults());

    // Retried requests re-use the same channels; no frame was ever
    // accepted twice (a double acceptance would surface as a duplicated
    // autofill entry or a dispatch fault).
    let autofills = sys.browser_ref("browser").unwrap().autofill_history();
    assert_eq!(autofills.iter().filter(|(a, _)| a.username == u).count(), 1);
}

#[test]
fn garbage_frames_do_not_wedge_any_component() {
    let (mut sys, u, d) = lossy_system(4, 0.0);
    // Hostile neighbor blasting junk at every service endpoint.
    {
        let net = sys.net_mut();
        net.register("hostile");
        net.connect(
            "hostile",
            SERVER_ENDPOINT,
            amnesia::net::LinkProfile::new(amnesia::net::LatencyModel::constant_ms(1.0)),
        );
        net.connect(
            "hostile",
            GCM_ENDPOINT,
            amnesia::net::LinkProfile::new(amnesia::net::LatencyModel::constant_ms(1.0)),
        );
        for i in 0..20u8 {
            net.send("hostile", SERVER_ENDPOINT, vec![i; (i as usize) % 7])
                .unwrap();
            net.send("hostile", GCM_ENDPOINT, vec![0xff; 3]).unwrap();
        }
    }
    sys.pump();
    assert!(!sys.faults().is_empty(), "junk must be recorded as faults");

    // The system still works for legitimate users.
    let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);
}

#[test]
fn stale_pending_requests_are_purged_by_recovery() {
    let (mut sys, u, d) = lossy_system(5, 1.0);
    // Request whose push is lost leaves a pending entry server-side…
    let _ = sys.generate_password("browser", "phone", &u, &d);

    // …which phone recovery purges along with the phone pairing.
    sys.remove_phone("phone");
    sys.recover_phone("alice", "mp", "browser", "phone-2", 55)
        .unwrap();
    // A (hypothetical, replayed) token for the stale request is rejected:
    // nothing pending survives recovery.
    assert_eq!(sys.server().stats().tokens_rejected, 0);
    let _ = (u, d);
}

#[test]
fn lockout_protects_against_online_guessing_over_the_wire() {
    let (mut sys, _, _) = lossy_system(6, 0.0);
    // Ten wrong master passwords through the real protocol path.
    for _ in 0..10 {
        let _ = sys.login("browser", "alice", "not the password");
    }
    // Now even the correct password is refused (account locked).
    let err = sys.login("browser", "alice", "mp").unwrap_err();
    assert!(err.to_string().contains("locked"), "{err}");
}

/// ISSUE 7: a rendezvous instance outage mid-generation surfaces a typed
/// timeout (no panic, no secret bytes in the telemetry snapshot), and a
/// restarted instance serves subsequent sessions — its durable device
/// registry survives the outage.
#[test]
fn rendezvous_outage_yields_typed_timeout_and_restart_recovers() {
    use amnesia::fleet::{Fleet, FleetConfig, FleetError};
    use amnesia::net::SimDuration;

    let mut fleet = Fleet::new(
        FleetConfig::default()
            .with_seed(0xdead)
            .with_shards(2)
            .with_rendezvous(2)
            .with_table_size(64)
            .with_session_timeout(SimDuration::from_micros(2_000_000)),
    );
    // Pin alice's home instance to NOT be her shard's local one so the
    // push path crosses instances (the outage hits mid-forwarding).
    let shard_name = fleet.router_mut().shard_for("alice").unwrap().to_string();
    let shard: usize = shard_name.trim_start_matches("shard-").parse().unwrap();
    let local = fleet.shard_local_gcm(shard).unwrap();
    let home = (local + 1) % fleet.rendezvous_count();
    fleet
        .add_user_with_home("alice", "hunter2 master", home)
        .unwrap();
    let u = Username::new("alice-acct0").unwrap();
    let d = Domain::new("outage.example.com").unwrap();
    fleet
        .add_account("alice", u, d, PasswordPolicy::default())
        .unwrap();
    let (_, healthy, _) = fleet.generate("alice", 0).unwrap();

    // Outage on the owning instance: the push is silently lost and the
    // session must convert the silence into a typed timeout.
    fleet.set_rendezvous_online(home, false);
    let err = fleet.generate("alice", 0).unwrap_err();
    match err {
        FleetError::System(ref e) => {
            assert!(e.to_string().contains("PasswordReady"), "{e}");
        }
        other => panic!("expected a typed system timeout, got {other:?}"),
    }

    // No secret material leaks into the deterministic telemetry snapshot.
    let json = fleet.telemetry().snapshot().to_json();
    assert!(!json.contains(healthy.as_str()), "password in telemetry");
    assert!(!json.contains("hunter2"), "master password in telemetry");
    assert!(
        fleet.telemetry().snapshot().counters["fleet.rendezvous.dropped"] > 0,
        "outage must be visible as dropped rendezvous traffic"
    );

    // Restart: the durable registry still knows alice's phone, so the
    // next session completes and produces the same deterministic bytes.
    fleet.set_rendezvous_online(home, true);
    let (_, recovered, _) = fleet.generate("alice", 0).unwrap();
    assert_eq!(recovered.as_str(), healthy.as_str());
}

// ---------------------------------------------------------------------------
// ISSUE 9: crash-consistency of the store's durable write path. A crash may
// tear the last WAL record at any byte, flip bits in unsynced pages, or land
// between a batch's ack and its fsync — recovery must be exact up to the
// last acked LSN and bit-for-bit deterministic.
// ---------------------------------------------------------------------------

mod wal_crash {
    use amnesia::store::wal::{
        scan_segment, DurabilityConfig, Wal, WalFile, FRAME_HEADER_LEN, FRAME_TRAILER_LEN,
        WAL_MAGIC,
    };
    use amnesia::store::{codec, Database};
    use std::path::{Path, PathBuf};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "amnesia-failure-injection-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Copies a flat durable-store directory (snapshot + wal segments).
    fn copy_dir(src: &Path, dst: &Path) {
        let _ = std::fs::remove_dir_all(dst);
        std::fs::create_dir_all(dst).unwrap();
        for entry in std::fs::read_dir(src).unwrap() {
            let entry = entry.unwrap();
            std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
        }
    }

    /// The single `wal-*.log` segment in `dir`.
    fn segment_file(dir: &Path) -> PathBuf {
        let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("wal-") && n.ends_with(".log"))
            })
            .collect();
        assert_eq!(segs.len(), 1, "expected exactly one segment in {dir:?}");
        segs.pop().unwrap()
    }

    /// Walks frame headers to produce `(start, end)` byte bounds per frame.
    fn frame_bounds(bytes: &[u8]) -> Vec<(usize, usize)> {
        let mut bounds = Vec::new();
        let mut off = WAL_MAGIC.len();
        while off < bytes.len() {
            let len = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
            let end = off + FRAME_HEADER_LEN + len + FRAME_TRAILER_LEN;
            bounds.push((off, end));
            off = end;
        }
        assert_eq!(off, bytes.len(), "frame walk must land on the file end");
        bounds
    }

    /// Builds a durable DB with rows `k0..k{n}` in table `rows`, fully
    /// synced, and returns its directory.
    fn build_durable(name: &str, n: usize) -> PathBuf {
        let dir = temp_dir(name);
        let db = Database::open_durable(&dir).unwrap();
        let t = db.table::<String, String>("rows");
        for i in 0..n {
            t.put(&format!("k{i}"), &format!("v{i}")).unwrap();
        }
        db.sync().unwrap();
        dir
    }

    fn assert_rows(db: &Database, n: usize) {
        let t = db.table::<String, String>("rows");
        assert_eq!(t.len(), n);
        for i in 0..n {
            assert_eq!(
                t.get(&format!("k{i}")).unwrap().as_deref(),
                Some(format!("v{i}").as_str()),
                "row k{i} wrong after recovery"
            );
        }
    }

    /// Torn write: the crash may cut the final record at ANY byte offset.
    /// Every cut inside the final frame must recover exactly the first n-1
    /// records; a cut at the frame boundary is a clean shorter log. Both
    /// recoveries of the same torn file must be bit-for-bit identical.
    #[test]
    fn torn_final_record_at_every_byte_offset_recovers_prefix() {
        const N: usize = 6;
        let src = build_durable("torn-src", N);
        let full = std::fs::read(segment_file(&src)).unwrap();
        let bounds = frame_bounds(&full);
        assert_eq!(bounds.len(), N);
        let (last_start, last_end) = bounds[N - 1];
        assert_eq!(last_end, full.len());

        let work = temp_dir("torn-work");
        for cut in last_start..=full.len() {
            copy_dir(&src, &work);
            let seg = segment_file(&work);
            std::fs::write(&seg, &full[..cut]).unwrap();

            let expect = if cut == full.len() { N } else { N - 1 };
            let first = {
                let db = Database::open_durable(&work).unwrap();
                assert_rows(&db, expect);
                db.snapshot_bytes().unwrap()
            };
            // Recovery physically truncated the torn tail: a second open
            // sees a clean log and produces bit-identical state.
            let truncated = std::fs::read(segment_file(&work)).unwrap();
            let scan = scan_segment(&truncated).unwrap();
            assert!(scan.clean, "cut at {cut}: tail not truncated on recovery");
            assert_eq!(scan.records.len(), expect);
            let second = {
                let db = Database::open_durable(&work).unwrap();
                assert_rows(&db, expect);
                db.snapshot_bytes().unwrap()
            };
            assert_eq!(first, second, "cut at {cut}: recovery not deterministic");
        }
        let _ = std::fs::remove_dir_all(&src);
        let _ = std::fs::remove_dir_all(&work);
    }

    /// A bit flip mid-log (an unsynced page going bad under the tail) stops
    /// replay at the corrupted frame; everything before it is kept and the
    /// damage is truncated away, exactly as the public scanner predicts.
    #[test]
    fn bit_flip_mid_log_truncates_at_corruption_point() {
        const N: usize = 8;
        let dir = build_durable("bitflip", N);
        let seg = segment_file(&dir);
        let mut bytes = std::fs::read(&seg).unwrap();
        let bounds = frame_bounds(&bytes);
        // Flip one bit in the middle of the fourth frame's payload.
        let (start, end) = bounds[3];
        bytes[(start + end) / 2] ^= 0x10;
        std::fs::write(&seg, &bytes).unwrap();

        let oracle = scan_segment(&bytes).unwrap();
        assert!(!oracle.clean);
        assert_eq!(
            oracle.records.len(),
            3,
            "scan must stop at the flipped frame"
        );

        let db = Database::open_durable(&dir).unwrap();
        assert_rows(&db, 3);
        drop(db);
        // The corrupt suffix is gone from disk; reopening is clean.
        let scan = scan_segment(&std::fs::read(segment_file(&dir)).unwrap()).unwrap();
        assert!(scan.clean);
        assert_eq!(scan.records.len(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// In-memory [`WalFile`] splitting durable from merely-written bytes,
    /// with optional sync-failure injection: the "disk" after a kill is the
    /// durable half only.
    #[derive(Clone)]
    struct CrashFile {
        state: Arc<Mutex<CrashFileState>>,
    }

    struct CrashFileState {
        durable: Vec<u8>,
        volatile: Vec<u8>,
        syncs_until_failure: Option<u32>,
    }

    impl CrashFile {
        fn new() -> CrashFile {
            CrashFile {
                state: Arc::new(Mutex::new(CrashFileState {
                    // As if created by DiskWalFile::create: magic synced.
                    durable: WAL_MAGIC.to_vec(),
                    volatile: Vec::new(),
                    syncs_until_failure: None,
                })),
            }
        }

        fn fail_after_syncs(&self, n: u32) {
            self.state.lock().unwrap().syncs_until_failure = Some(n);
        }

        fn durable_bytes(&self) -> Vec<u8> {
            self.state.lock().unwrap().durable.clone()
        }
    }

    impl WalFile for CrashFile {
        fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
            self.state.lock().unwrap().volatile.extend_from_slice(bytes);
            Ok(())
        }

        fn sync(&mut self) -> std::io::Result<()> {
            let mut s = self.state.lock().unwrap();
            if let Some(n) = s.syncs_until_failure {
                if n == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Other,
                        "injected fsync failure",
                    ));
                }
                s.syncs_until_failure = Some(n - 1);
            }
            let pending = std::mem::take(&mut s.volatile);
            s.durable.extend_from_slice(&pending);
            Ok(())
        }
    }

    fn wal_over(file: &CrashFile) -> Wal {
        Wal::with_file(
            Box::new(file.clone()),
            0,
            &DurabilityConfig {
                group_window: Duration::ZERO,
                ..DurabilityConfig::default()
            },
        )
    }

    fn enc(s: &str) -> Vec<u8> {
        codec::to_bytes(&s.to_string()).unwrap()
    }

    /// The ack/fsync boundary: a record is acked (commit returns Ok) only
    /// once its bytes are durable, so a kill at ANY instant loses only
    /// unacked records. Appended-but-uncommitted records vanish; every
    /// acked LSN survives in the durable bytes.
    #[test]
    fn kill_between_append_and_fsync_loses_only_unacked_records() {
        let file = CrashFile::new();
        let wal = wal_over(&file);
        let mut acked = Vec::new();
        for i in 0..5 {
            let lsn = wal
                .append_put("rows", &enc(&format!("k{i}")), &enc(&format!("v{i}")))
                .unwrap();
            wal.commit(lsn).unwrap();
            acked.push(lsn);
        }
        // Record 6 is appended but the process dies before its commit: the
        // bytes never reached sync and must not survive the kill.
        wal.append_put("rows", &enc("k5"), &enc("v5")).unwrap();
        drop(wal);

        let disk = file.durable_bytes();
        let scan = scan_segment(&disk).unwrap();
        assert!(scan.clean);
        let recovered: Vec<u64> = scan.records.iter().map(|r| r.lsn).collect();
        assert_eq!(
            recovered, acked,
            "disk after kill must hold exactly the acked LSNs"
        );
    }

    /// An fsync failure between a batch's append and its ack: commit errors
    /// (no false ack), the WAL goes sticky-failed, and the durable bytes
    /// still parse cleanly to exactly the previously acked records.
    #[test]
    fn fsync_failure_is_never_acked_and_leaves_durable_prefix_clean() {
        let file = CrashFile::new();
        let wal = wal_over(&file);
        let first = wal.append_put("rows", &enc("a"), &enc("1")).unwrap();
        wal.commit(first).unwrap();

        file.fail_after_syncs(0);
        let doomed = wal.append_put("rows", &enc("b"), &enc("2")).unwrap();
        assert!(
            wal.commit(doomed).is_err(),
            "commit must surface fsync failure"
        );
        // The failure is sticky: later mutations cannot silently succeed.
        let later = wal.append_put("rows", &enc("c"), &enc("3"));
        assert!(
            later.is_err() || wal.commit(later.unwrap()).is_err(),
            "wal must stay failed after an fsync error"
        );
        drop(wal);

        let scan = scan_segment(&file.durable_bytes()).unwrap();
        assert!(scan.clean);
        assert_eq!(
            scan.records.iter().map(|r| r.lsn).collect::<Vec<u64>>(),
            vec![first],
            "only the acked record may be on disk"
        );
    }

    /// Corruption in a SEALED segment (not the tail) is real data loss, not
    /// a torn write: recovery must refuse with a typed error instead of
    /// silently dropping acked records.
    #[test]
    fn corrupt_sealed_segment_is_a_typed_error_not_silent_loss() {
        use amnesia::store::StoreError;

        // Build two segments' bytes through the real encoder.
        let file1 = CrashFile::new();
        let wal1 = wal_over(&file1);
        for i in 0..4 {
            let lsn = wal1
                .append_put("rows", &enc(&format!("k{i}")), &enc(&format!("v{i}")))
                .unwrap();
            wal1.commit(lsn).unwrap();
        }
        drop(wal1);
        let file2 = CrashFile::new();
        let wal2 = Wal::with_file(
            Box::new(file2.clone()),
            4,
            &DurabilityConfig {
                group_window: Duration::ZERO,
                ..DurabilityConfig::default()
            },
        );
        for i in 4..6 {
            let lsn = wal2
                .append_put("rows", &enc(&format!("k{i}")), &enc(&format!("v{i}")))
                .unwrap();
            wal2.commit(lsn).unwrap();
        }
        drop(wal2);

        // Control: intact segments recover all six rows.
        let dir = temp_dir("sealed-ok");
        let seg1 = format!("wal-{:020}.log", 1);
        let seg2 = format!("wal-{:020}.log", 5);
        std::fs::write(dir.join(&seg1), file1.durable_bytes()).unwrap();
        std::fs::write(dir.join(&seg2), file2.durable_bytes()).unwrap();
        let db = Database::open_durable(&dir).unwrap();
        assert_rows(&db, 6);
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);

        // Bit flip inside the sealed first segment: typed corruption error.
        let dir = temp_dir("sealed-corrupt");
        let mut sealed = file1.durable_bytes();
        let mid = sealed.len() / 2;
        sealed[mid] ^= 0x04;
        std::fs::write(dir.join(&seg1), sealed).unwrap();
        std::fs::write(dir.join(&seg2), file2.durable_bytes()).unwrap();
        match Database::open_durable(&dir) {
            Err(StoreError::Corrupt { .. }) => {}
            other => panic!("expected StoreError::Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
