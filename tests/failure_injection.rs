//! Failure injection: lossy push delivery, malformed traffic, and misuse
//! resistance across the deployment.

use amnesia::core::{Domain, PasswordPolicy, Username};
use amnesia::system::{AmnesiaSystem, NetProfile, SystemConfig, GCM_ENDPOINT, SERVER_ENDPOINT};

fn lossy_system(seed: u64, drop_p: f64) -> (AmnesiaSystem, Username, Domain) {
    let mut sys = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(seed)
            .with_table_size(64)
            .with_profile(NetProfile::lan().with_push_drop_probability(drop_p)),
    );
    sys.add_browser("browser");
    sys.add_phone("phone", seed + 1);
    sys.setup_user("alice", "mp", "browser", "phone").unwrap();
    let u = Username::new("alice").unwrap();
    let d = Domain::new("lossy.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    (sys, u, d)
}

#[test]
fn dropped_push_fails_one_attempt_and_retry_recovers() {
    // 100% push loss: generation must fail cleanly, not hang or panic.
    let (mut sys, u, d) = lossy_system(1, 1.0);
    let err = sys
        .generate_password("browser", "phone", &u, &d)
        .unwrap_err();
    assert!(err.to_string().contains("PasswordReady"), "{err}");
    assert!(sys.net_mut().dropped_count() >= 1);

    // 50% loss: bounded retry succeeds (deterministic seed).
    let (mut sys, u, d) = lossy_system(2, 0.5);
    let outcome = sys
        .generate_password_with_retry("browser", "phone", &u, &d, 10)
        .unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);
}

#[test]
fn retry_on_reliable_network_is_single_shot() {
    let (mut sys, u, d) = lossy_system(3, 0.0);
    let first = sys
        .generate_password_with_retry("browser", "phone", &u, &d, 5)
        .unwrap();
    let direct = sys.generate_password("browser", "phone", &u, &d).unwrap();
    assert_eq!(first.password, direct.password);
    assert_eq!(sys.net_mut().dropped_count(), 0);
}

#[test]
fn drop_and_retry_converge_under_out_of_order_links() {
    // Jittered wifi links deliver out of order (non-FIFO is now the
    // default) *and* the push leg loses half its frames: bounded retry must
    // still converge on the correct password, with no dispatch faults —
    // the replay window absorbs the reordering, retries absorb the loss.
    let mut sys = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(11)
            .with_table_size(64)
            .with_profile(NetProfile::wifi().with_push_drop_probability(0.5)),
    );
    sys.add_browser("browser");
    sys.add_phone("phone", 12);
    sys.setup_user("omar", "mp", "browser", "phone").unwrap();
    let u = Username::new("omar").unwrap();
    let d = Domain::new("jitter.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();

    let outcome = sys
        .generate_password_with_retry("browser", "phone", &u, &d, 10)
        .unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);
    assert!(sys.faults().is_empty(), "{:?}", sys.faults());

    // Retried requests re-use the same channels; no frame was ever
    // accepted twice (a double acceptance would surface as a duplicated
    // autofill entry or a dispatch fault).
    let autofills = sys.browser_ref("browser").unwrap().autofill_history();
    assert_eq!(autofills.iter().filter(|(a, _)| a.username == u).count(), 1);
}

#[test]
fn garbage_frames_do_not_wedge_any_component() {
    let (mut sys, u, d) = lossy_system(4, 0.0);
    // Hostile neighbor blasting junk at every service endpoint.
    {
        let net = sys.net_mut();
        net.register("hostile");
        net.connect(
            "hostile",
            SERVER_ENDPOINT,
            amnesia::net::LinkProfile::new(amnesia::net::LatencyModel::constant_ms(1.0)),
        );
        net.connect(
            "hostile",
            GCM_ENDPOINT,
            amnesia::net::LinkProfile::new(amnesia::net::LatencyModel::constant_ms(1.0)),
        );
        for i in 0..20u8 {
            net.send("hostile", SERVER_ENDPOINT, vec![i; (i as usize) % 7])
                .unwrap();
            net.send("hostile", GCM_ENDPOINT, vec![0xff; 3]).unwrap();
        }
    }
    sys.pump();
    assert!(!sys.faults().is_empty(), "junk must be recorded as faults");

    // The system still works for legitimate users.
    let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();
    assert_eq!(outcome.password.as_str().len(), 32);
}

#[test]
fn stale_pending_requests_are_purged_by_recovery() {
    let (mut sys, u, d) = lossy_system(5, 1.0);
    // Request whose push is lost leaves a pending entry server-side…
    let _ = sys.generate_password("browser", "phone", &u, &d);

    // …which phone recovery purges along with the phone pairing.
    sys.remove_phone("phone");
    sys.recover_phone("alice", "mp", "browser", "phone-2", 55)
        .unwrap();
    // A (hypothetical, replayed) token for the stale request is rejected:
    // nothing pending survives recovery.
    assert_eq!(sys.server().stats().tokens_rejected, 0);
    let _ = (u, d);
}

#[test]
fn lockout_protects_against_online_guessing_over_the_wire() {
    let (mut sys, _, _) = lossy_system(6, 0.0);
    // Ten wrong master passwords through the real protocol path.
    for _ in 0..10 {
        let _ = sys.login("browser", "alice", "not the password");
    }
    // Now even the correct password is refused (account locked).
    let err = sys.login("browser", "alice", "mp").unwrap_err();
    assert!(err.to_string().contains("locked"), "{err}");
}

/// ISSUE 7: a rendezvous instance outage mid-generation surfaces a typed
/// timeout (no panic, no secret bytes in the telemetry snapshot), and a
/// restarted instance serves subsequent sessions — its durable device
/// registry survives the outage.
#[test]
fn rendezvous_outage_yields_typed_timeout_and_restart_recovers() {
    use amnesia::fleet::{Fleet, FleetConfig, FleetError};
    use amnesia::net::SimDuration;

    let mut fleet = Fleet::new(
        FleetConfig::default()
            .with_seed(0xdead)
            .with_shards(2)
            .with_rendezvous(2)
            .with_table_size(64)
            .with_session_timeout(SimDuration::from_micros(2_000_000)),
    );
    // Pin alice's home instance to NOT be her shard's local one so the
    // push path crosses instances (the outage hits mid-forwarding).
    let shard_name = fleet.router_mut().shard_for("alice").unwrap().to_string();
    let shard: usize = shard_name.trim_start_matches("shard-").parse().unwrap();
    let local = fleet.shard_local_gcm(shard).unwrap();
    let home = (local + 1) % fleet.rendezvous_count();
    fleet
        .add_user_with_home("alice", "hunter2 master", home)
        .unwrap();
    let u = Username::new("alice-acct0").unwrap();
    let d = Domain::new("outage.example.com").unwrap();
    fleet
        .add_account("alice", u, d, PasswordPolicy::default())
        .unwrap();
    let (_, healthy, _) = fleet.generate("alice", 0).unwrap();

    // Outage on the owning instance: the push is silently lost and the
    // session must convert the silence into a typed timeout.
    fleet.set_rendezvous_online(home, false);
    let err = fleet.generate("alice", 0).unwrap_err();
    match err {
        FleetError::System(ref e) => {
            assert!(e.to_string().contains("PasswordReady"), "{e}");
        }
        other => panic!("expected a typed system timeout, got {other:?}"),
    }

    // No secret material leaks into the deterministic telemetry snapshot.
    let json = fleet.telemetry().snapshot().to_json();
    assert!(!json.contains(healthy.as_str()), "password in telemetry");
    assert!(!json.contains("hunter2"), "master password in telemetry");
    assert!(
        fleet.telemetry().snapshot().counters["fleet.rendezvous.dropped"] > 0,
        "outage must be visible as dropped rendezvous traffic"
    );

    // Restart: the durable registry still knows alice's phone, so the
    // next session completes and produces the same deterministic bytes.
    fleet.set_rendezvous_online(home, true);
    let (_, recovered, _) = fleet.generate("alice", 0).unwrap();
    assert_eq!(recovered.as_str(), healthy.as_str());
}
