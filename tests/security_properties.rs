//! Security invariants across the whole stack, including property-based
//! tests of the generative core on the in-repo `amnesia-testkit` harness.

use amnesia::core::{
    derive_password, AccountEntry, CharClass, CharacterTable, Domain, EntryTable, OnlineId,
    PasswordPolicy, PasswordRequest, Seed, Username,
};
use amnesia::crypto::SecretRng;
use amnesia_testkit::{for_all, require, require_eq, require_ne, Gen};

const CASES: u32 = 64;

const NAME_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";

fn arb_name(g: &mut Gen) -> String {
    let len = g.usize_in(1, 24);
    (0..len).map(|_| *g.pick(NAME_CHARS) as char).collect()
}

/// Determinism: the pipeline is a pure function of its five inputs.
#[test]
fn pipeline_deterministic() {
    for_all("pipeline deterministic", CASES, |g: &mut Gen| {
        let user = arb_name(g);
        let domain = arb_name(g);
        let mut rng = SecretRng::seeded(g.next_u64());
        let entry = AccountEntry::new(
            Username::new(user).unwrap(),
            Domain::new(domain).unwrap(),
            Seed::random(&mut rng),
        );
        let oid = OnlineId::random(&mut rng);
        let table = EntryTable::random(&mut rng, 64);
        let policy = PasswordPolicy::default();
        let a = derive_password(&entry, &oid, &table, &policy).unwrap();
        let b = derive_password(&entry, &oid, &table, &policy).unwrap();
        require_eq!(a, b);
        Ok(())
    });
}

/// Every generated password satisfies its policy: exact length, only
/// charset members.
#[test]
fn generated_passwords_respect_policy() {
    for_all("passwords respect policy", CASES, |g: &mut Gen| {
        let user = arb_name(g);
        let length = g.usize_in(1, 32);
        let charset_mask = g.u64_in(1, 15) as u8;
        let classes: Vec<CharClass> = CharClass::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| charset_mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        let table = CharacterTable::from_classes(&classes).unwrap();
        let policy = PasswordPolicy::new(table.clone(), length).unwrap();

        let mut rng = SecretRng::seeded(g.next_u64());
        let entry = AccountEntry::new(
            Username::new(user).unwrap(),
            Domain::new("x.example.com").unwrap(),
            Seed::random(&mut rng),
        );
        let oid = OnlineId::random(&mut rng);
        let entry_table = EntryTable::random(&mut rng, 32);
        let password = derive_password(&entry, &oid, &entry_table, &policy).unwrap();
        require_eq!(password.len(), length);
        for c in password.as_str().chars() {
            require!(table.contains(c), "{c:?} not in charset");
        }
        Ok(())
    });
}

/// Avalanche: distinct seeds give distinct requests, tokens, passwords.
#[test]
fn distinct_seeds_never_collide() {
    for_all("distinct seeds never collide", CASES, |g: &mut Gen| {
        let mut rng = SecretRng::seeded(g.next_u64());
        let u = Username::new("u").unwrap();
        let d = Domain::new("d.example.com").unwrap();
        let s1 = Seed::random(&mut rng);
        let s2 = Seed::random(&mut rng);
        if s1 == s2 {
            return Ok(()); // 2^-256 chance; nothing to compare
        }
        let r1 = PasswordRequest::derive(&u, &d, &s1);
        let r2 = PasswordRequest::derive(&u, &d, &s2);
        require_ne!(r1.clone(), r2.clone());
        let table = EntryTable::random(&mut rng, 64);
        require_ne!(table.token(&r1).unwrap(), table.token(&r2).unwrap());
        Ok(())
    });
}

/// The request never leaks its inputs: R contains no substring of the
/// username or domain (it is a SHA-256 output).
#[test]
fn request_reveals_nothing_textual() {
    for_all("request reveals nothing", CASES, |g: &mut Gen| {
        let len = g.usize_in(6, 20);
        let user: String = (0..len)
            .map(|_| (g.usize_in(b'a' as usize, b'z' as usize) as u8) as char)
            .collect();
        let mut rng = SecretRng::seeded(g.next_u64());
        let u = Username::new(user.clone()).unwrap();
        let d = Domain::new("secret-site.example.com").unwrap();
        let r = PasswordRequest::derive(&u, &d, &Seed::random(&mut rng));
        let hex = r.to_hex();
        require!(!hex.contains(&user), "request leaks username");
        require!(!hex.contains("secret-site"), "request leaks domain");
        Ok(())
    });
}

#[test]
fn attack_matrix_is_the_paper_matrix() {
    // The single most important claim: only the designed two-factor
    // combinations (plus a broken browser-side TLS session) yield
    // passwords. Runs the full live-deployment scenario suite.
    let reports = amnesia::attacks::run_all(0x600D);
    let successes: Vec<_> = reports
        .iter()
        .filter(|r| r.success)
        .map(|r| r.vector)
        .collect();
    use amnesia::attacks::AttackVector::*;
    assert_eq!(
        successes,
        vec![
            BrokenHttpsBrowserLink,
            PhonePlusMasterPassword,
            ServerBreachPlusPhone,
            // Vault: the scenario internally asserts breach-alone fails;
            // success records the breach+phone combination.
            VaultServerBreach,
        ]
    );
}

#[test]
fn wiretaps_see_no_secrets_on_protected_channels() {
    use amnesia::core::{Domain, PasswordPolicy, Username};
    use amnesia::system::{AmnesiaSystem, SystemConfig, SERVER_ENDPOINT};

    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(9).with_table_size(128));
    sys.add_browser("browser");
    sys.add_phone("phone", 90);
    let tap_up = sys.net_mut().tap("browser", SERVER_ENDPOINT).unwrap();
    let tap_down = sys.net_mut().tap(SERVER_ENDPOINT, "browser").unwrap();
    let tap_phone = sys.net_mut().tap("phone", SERVER_ENDPOINT).unwrap();

    sys.setup_user("kate", "hunter2 master", "browser", "phone")
        .unwrap();
    let u = Username::new("kate").unwrap();
    let d = Domain::new("w.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();

    let password_bytes = outcome.password.as_str().as_bytes().to_vec();
    let mp_bytes = b"hunter2 master".to_vec();
    for tap in [&tap_up, &tap_down, &tap_phone] {
        for record in tap.records() {
            for needle in [&password_bytes, &mp_bytes] {
                assert!(
                    !record
                        .payload
                        .windows(needle.len())
                        .any(|w| w == needle.as_slice()),
                    "secret leaked on {} -> {}",
                    record.from,
                    record.to
                );
            }
        }
    }
}

#[test]
fn server_stores_no_reversible_credentials() {
    use amnesia::system::{AmnesiaSystem, SystemConfig};

    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(10).with_table_size(128));
    sys.add_browser("browser");
    sys.add_phone("phone", 100);
    sys.setup_user("liam", "the master password", "browser", "phone")
        .unwrap();

    let record = sys.server().user_record("liam").unwrap();
    // Verifiers, not plaintext.
    assert_ne!(record.mp_verifier.hash_bytes(), b"the master password");
    assert!(record.mp_verifier.verify(b"the master password"));
    assert!(!record.mp_verifier.verify(b"the master passwore"));
    let pid = sys.phone("phone").unwrap().pid().clone();
    let pid_verifier = record.pid_verifier.as_ref().unwrap();
    assert_ne!(pid_verifier.hash_bytes(), pid.as_bytes());
    assert!(pid_verifier.verify(pid.as_bytes()));
}

#[test]
fn kdf_policy_downgrade_is_rejected_at_login() {
    use amnesia::crypto::KdfPolicy;
    use amnesia::server::{AmnesiaServer, ServerConfig, ServerError};
    use amnesia::system::{AmnesiaSystem, SystemConfig};

    // A deployment provisioned at a memory-hard rung (tiny parameters so
    // the test stays fast; the *class* is what matters).
    let tiny = KdfPolicy::MemoryHard {
        log_n: 4,
        r: 1,
        p: 1,
    };
    let mut sys = AmnesiaSystem::new(
        SystemConfig::default()
            .with_seed(11)
            .with_table_size(128)
            .with_kdf_policy(tiny),
    );
    sys.add_browser("browser");
    sys.add_phone("phone", 200);
    sys.setup_user("mona", "a strong master password", "browser", "phone")
        .unwrap();
    assert_eq!(
        *sys.server()
            .user_record("mona")
            .unwrap()
            .mp_verifier
            .policy(),
        tiny
    );

    // Snapshot the database and "restart" the server misconfigured back to
    // the CPU-only rung. Login must fail loudly — never silently serve the
    // memory-hard record at reduced hardness.
    let path = std::env::temp_dir().join(format!(
        "amnesia-downgrade-{}-{:?}.db",
        std::process::id(),
        std::thread::current().id()
    ));
    sys.server().save_to(&path).unwrap();
    let mut downgraded = AmnesiaServer::open(
        ServerConfig {
            endpoint: "amnesia-server".into(),
            seed: 999,
            kdf_policy: KdfPolicy::PAPER,
        },
        &path,
    )
    .unwrap();
    assert!(matches!(
        downgraded.login("mona", "a strong master password"),
        Err(ServerError::PolicyDowngrade { .. })
    ));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn replayed_tokens_are_rejected_by_pending_tracking() {
    use amnesia::net::SimInstant;
    use amnesia::server::protocol::TokenResponse;
    use amnesia::server::{AmnesiaServer, ServerConfig};

    let mut server = AmnesiaServer::new(ServerConfig::default());
    server.register_user("mia", "mp").unwrap();
    // A token for a request that was never pushed must be rejected.
    let mut rng = SecretRng::seeded(0);
    let bogus = TokenResponse {
        request_id: 0,
        request: PasswordRequest::derive(
            &Username::new("mia").unwrap(),
            &Domain::new("x.example.com").unwrap(),
            &Seed::random(&mut rng),
        ),
        token: amnesia::core::Token::from_bytes(rng.bytes()),
        tstart: SimInstant::EPOCH,
    };
    assert!(server.receive_token(&bogus).is_err());
    assert_eq!(server.stats().tokens_rejected, 1);
}

#[test]
fn channel_tampering_is_detected_and_dropped() {
    use amnesia::net::SecureChannel;

    let mut tx = SecureChannel::new(b"shared", "c2s");
    let mut rx = SecureChannel::new(b"shared", "c2s");
    let mut sealed = tx.seal(b"RequestPassword{...}").unwrap();
    sealed[10] ^= 0x80;
    assert!(rx.open(&sealed).is_err());
}

/// The sliding-window tentpole property: an arbitrary permutation of a
/// sealed-frame stream, with arbitrary duplications mixed in, decrypts to
/// exactly the sent set — every frame accepted once, every extra copy
/// rejected as a replay, no nonce ever accepted twice.
#[test]
fn permuted_and_duplicated_streams_decrypt_to_exactly_the_sent_set() {
    use amnesia::net::{ChannelError, SecureChannel, REPLAY_WINDOW};

    for_all(
        "permuted stream decrypts exactly once",
        CASES,
        |g: &mut Gen| {
            let mut tx = SecureChannel::new(b"window secret", "c2s");
            let mut rx = SecureChannel::new(b"window secret", "c2s");
            let n = g.usize_in(1, REPLAY_WINDOW as usize / 2);
            let sealed: Vec<Vec<u8>> = (0..n)
                .map(|i| tx.seal(format!("frame {i}").as_bytes()).unwrap())
                .collect();
            // Delivery schedule: every frame once plus random duplicates,
            // shuffled (Fisher–Yates driven by the generator).
            let mut schedule: Vec<usize> = (0..n).collect();
            for _ in 0..g.usize_in(0, n) {
                schedule.push(g.usize_in(0, n - 1));
            }
            for i in (1..schedule.len()).rev() {
                let j = g.usize_in(0, i);
                schedule.swap(i, j);
            }

            let mut accepted = vec![0u32; n];
            for &i in &schedule {
                match rx.open(&sealed[i]) {
                    Ok(plain) => {
                        require_eq!(plain, format!("frame {i}").into_bytes());
                        accepted[i] += 1;
                    }
                    Err(ChannelError::Replayed { nonce }) => {
                        require_eq!(nonce, i as u64);
                        require_eq!(accepted[i], 1);
                    }
                    Err(e) => return Err(format!("unexpected channel error: {e}")),
                }
            }
            require!(
                accepted.iter().all(|&c| c == 1),
                "every sent frame must decrypt exactly once"
            );
            Ok(())
        },
    );
}

#[test]
fn replayed_wire_frames_are_rejected_systemwide() {
    use amnesia::system::{AmnesiaSystem, SystemConfig, SERVER_ENDPOINT};

    // Capture every genuine server→browser frame of a generation off the
    // wire, then re-inject the lot: each duplicate must be refused by the
    // channel's replay window, and the browser must not autofill twice.
    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(21).with_table_size(128));
    sys.add_browser("browser");
    sys.add_phone("phone", 210);
    sys.setup_user("nina", "mp", "browser", "phone").unwrap();
    let u = Username::new("nina").unwrap();
    let d = Domain::new("replay.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    let tap = sys.net_mut().tap(SERVER_ENDPOINT, "browser").unwrap();
    sys.generate_password("browser", "phone", &u, &d).unwrap();

    let autofills_before = sys.browser_ref("browser").unwrap().autofill_history().len();
    let records = tap.records();
    assert!(!records.is_empty());
    let faults_before = sys.faults().len();
    for record in &records {
        sys.net_mut()
            .send(SERVER_ENDPOINT, "browser", record.payload.clone())
            .unwrap();
    }
    sys.pump();

    let new_faults = &sys.faults()[faults_before..];
    assert_eq!(new_faults.len(), records.len(), "{new_faults:?}");
    assert!(
        new_faults.iter().all(|f| f.contains("replayed")),
        "{new_faults:?}"
    );
    assert_eq!(
        sys.browser_ref("browser").unwrap().autofill_history().len(),
        autofills_before,
        "a replayed PasswordReady must never autofill again"
    );
}
