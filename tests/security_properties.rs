//! Security invariants across the whole stack, including property-based
//! tests of the generative core.

use amnesia::core::{
    derive_password, AccountEntry, CharClass, CharacterTable, Domain, EntryTable, OnlineId,
    PasswordPolicy, PasswordRequest, Seed, Username,
};
use amnesia::crypto::SecretRng;
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9._-]{1,24}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Determinism: the pipeline is a pure function of its five inputs.
    #[test]
    fn pipeline_deterministic(user in arb_name(), domain in arb_name(), seed in any::<u64>()) {
        let mut rng = SecretRng::seeded(seed);
        let entry = AccountEntry::new(
            Username::new(user).unwrap(),
            Domain::new(domain).unwrap(),
            Seed::random(&mut rng),
        );
        let oid = OnlineId::random(&mut rng);
        let table = EntryTable::random(&mut rng, 64);
        let policy = PasswordPolicy::default();
        let a = derive_password(&entry, &oid, &table, &policy).unwrap();
        let b = derive_password(&entry, &oid, &table, &policy).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Every generated password satisfies its policy: exact length, only
    /// charset members.
    #[test]
    fn generated_passwords_respect_policy(
        user in arb_name(),
        seed in any::<u64>(),
        length in 1usize..=32,
        charset_mask in 1u8..16,
    ) {
        let classes: Vec<CharClass> = CharClass::ALL
            .into_iter()
            .enumerate()
            .filter(|(i, _)| charset_mask & (1 << i) != 0)
            .map(|(_, c)| c)
            .collect();
        let table = CharacterTable::from_classes(&classes).unwrap();
        let policy = PasswordPolicy::new(table.clone(), length).unwrap();

        let mut rng = SecretRng::seeded(seed);
        let entry = AccountEntry::new(
            Username::new(user).unwrap(),
            Domain::new("x.example.com").unwrap(),
            Seed::random(&mut rng),
        );
        let oid = OnlineId::random(&mut rng);
        let entry_table = EntryTable::random(&mut rng, 32);
        let password = derive_password(&entry, &oid, &entry_table, &policy).unwrap();
        prop_assert_eq!(password.len(), length);
        for c in password.as_str().chars() {
            prop_assert!(table.contains(c), "{c:?} not in charset");
        }
    }

    /// Avalanche: distinct seeds give distinct requests, tokens, passwords.
    #[test]
    fn distinct_seeds_never_collide(seed in any::<u64>()) {
        let mut rng = SecretRng::seeded(seed);
        let u = Username::new("u").unwrap();
        let d = Domain::new("d.example.com").unwrap();
        let s1 = Seed::random(&mut rng);
        let s2 = Seed::random(&mut rng);
        prop_assume!(s1 != s2);
        let r1 = PasswordRequest::derive(&u, &d, &s1);
        let r2 = PasswordRequest::derive(&u, &d, &s2);
        prop_assert_ne!(r1.clone(), r2.clone());
        let table = EntryTable::random(&mut rng, 64);
        prop_assert_ne!(table.token(&r1).unwrap(), table.token(&r2).unwrap());
    }

    /// The request never leaks its inputs: R contains no substring of the
    /// username or domain (it is a SHA-256 output).
    #[test]
    fn request_reveals_nothing_textual(user in "[a-z]{6,20}", seed in any::<u64>()) {
        let mut rng = SecretRng::seeded(seed);
        let u = Username::new(user.clone()).unwrap();
        let d = Domain::new("secret-site.example.com").unwrap();
        let r = PasswordRequest::derive(&u, &d, &Seed::random(&mut rng));
        let hex = r.to_hex();
        prop_assert!(!hex.contains(&user));
        prop_assert!(!hex.contains("secret-site"));
    }
}

#[test]
fn attack_matrix_is_the_paper_matrix() {
    // The single most important claim: only the designed two-factor
    // combinations (plus a broken browser-side TLS session) yield
    // passwords. Runs the full live-deployment scenario suite.
    let reports = amnesia::attacks::run_all(0x600D);
    let successes: Vec<_> = reports
        .iter()
        .filter(|r| r.success)
        .map(|r| r.vector)
        .collect();
    use amnesia::attacks::AttackVector::*;
    assert_eq!(
        successes,
        vec![
            BrokenHttpsBrowserLink,
            PhonePlusMasterPassword,
            ServerBreachPlusPhone,
            // Vault: the scenario internally asserts breach-alone fails;
            // success records the breach+phone combination.
            VaultServerBreach,
        ]
    );
}

#[test]
fn wiretaps_see_no_secrets_on_protected_channels() {
    use amnesia::core::{Domain, PasswordPolicy, Username};
    use amnesia::system::{AmnesiaSystem, SystemConfig, SERVER_ENDPOINT};

    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(9).with_table_size(128));
    sys.add_browser("browser");
    sys.add_phone("phone", 90);
    let tap_up = sys.net_mut().tap("browser", SERVER_ENDPOINT);
    let tap_down = sys.net_mut().tap(SERVER_ENDPOINT, "browser");
    let tap_phone = sys.net_mut().tap("phone", SERVER_ENDPOINT);

    sys.setup_user("kate", "hunter2 master", "browser", "phone")
        .unwrap();
    let u = Username::new("kate").unwrap();
    let d = Domain::new("w.example.com").unwrap();
    sys.add_account("browser", u.clone(), d.clone(), PasswordPolicy::default())
        .unwrap();
    let outcome = sys.generate_password("browser", "phone", &u, &d).unwrap();

    let password_bytes = outcome.password.as_str().as_bytes().to_vec();
    let mp_bytes = b"hunter2 master".to_vec();
    for tap in [&tap_up, &tap_down, &tap_phone] {
        for record in tap.records() {
            for needle in [&password_bytes, &mp_bytes] {
                assert!(
                    !record
                        .payload
                        .windows(needle.len())
                        .any(|w| w == needle.as_slice()),
                    "secret leaked on {} -> {}",
                    record.from,
                    record.to
                );
            }
        }
    }
}

#[test]
fn server_stores_no_reversible_credentials() {
    use amnesia::system::{AmnesiaSystem, SystemConfig};

    let mut sys = AmnesiaSystem::new(SystemConfig::default().with_seed(10).with_table_size(128));
    sys.add_browser("browser");
    sys.add_phone("phone", 100);
    sys.setup_user("liam", "the master password", "browser", "phone")
        .unwrap();

    let record = sys.server().user_record("liam").unwrap();
    // Verifiers, not plaintext.
    assert_ne!(record.mp_verifier.hash_bytes(), b"the master password");
    assert!(record.mp_verifier.verify(b"the master password"));
    assert!(!record.mp_verifier.verify(b"the master passwore"));
    let pid = sys.phone("phone").unwrap().pid().clone();
    let pid_verifier = record.pid_verifier.as_ref().unwrap();
    assert_ne!(pid_verifier.hash_bytes(), pid.as_bytes());
    assert!(pid_verifier.verify(pid.as_bytes()));
}

#[test]
fn replayed_tokens_are_rejected_by_pending_tracking() {
    use amnesia::net::SimInstant;
    use amnesia::server::protocol::TokenResponse;
    use amnesia::server::{AmnesiaServer, ServerConfig};

    let mut server = AmnesiaServer::new(ServerConfig::default());
    server.register_user("mia", "mp").unwrap();
    // A token for a request that was never pushed must be rejected.
    let mut rng = SecretRng::seeded(0);
    let bogus = TokenResponse {
        request: PasswordRequest::derive(
            &Username::new("mia").unwrap(),
            &Domain::new("x.example.com").unwrap(),
            &Seed::random(&mut rng),
        ),
        token: amnesia::core::Token::from_bytes(rng.bytes()),
        tstart: SimInstant::EPOCH,
    };
    assert!(server.receive_token(&bogus).is_err());
    assert_eq!(server.stats().tokens_rejected, 1);
}

#[test]
fn channel_tampering_is_detected_and_dropped() {
    use amnesia::net::SecureChannel;

    let mut tx = SecureChannel::new(b"shared", "c2s");
    let mut rx = SecureChannel::new(b"shared", "c2s");
    let mut sealed = tx.seal(b"RequestPassword{...}");
    sealed[10] ^= 0x80;
    assert!(rx.open(&sealed).is_err());
}
